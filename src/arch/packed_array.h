/**
 * @file
 * Word-packed (64-lane SWAR) weight-stationary array simulator.
 *
 * PackedArray computes exactly the same FoldResult as SystolicArray /
 * RtlArray — same outputs, same cycle counts, same stats-registry
 * deltas under the same stat names — but advances the unary bitstreams
 * 64 simulated cycles per host word operation instead of one nextBit()
 * per PE per cycle.
 *
 * The key identity that makes this possible: the C-BSG weight RNG
 * advances only on input 1-bits, so the k-th random number a PE
 * compares against WABS is wrng.at(k) regardless of *where* the input
 * 1-bits fall in the MAC interval. A rate/temporal MAC therefore
 * reduces to two packed-popcount queries:
 *
 *     ones  = popcount(input stream over the mul window)   (per row)
 *     count = popcount(first `ones` bits of the packed
 *             weight-comparison stream bit_k = (wrng.at(k) < wabs))
 *
 * with the sign handled in sign-magnitude exactly as in PeCore, and the
 * uGEMM-H bipolar variant splitting the count across the polarity-1 and
 * polarity-0 weight streams. Early termination truncates the input
 * window (masked final word); the top-row shifter rescale is identical
 * to SystolicArray. See DESIGN.md §8 for the full derivation.
 *
 * On fault-free folds (and under weight-register / DRAM fault plans,
 * which pre-corrupt the staged codes) the MAC loop additionally runs
 * cache-blocked: weight streams are staged once per column panel as
 * prefix-count tables in an L2-budgeted per-worker arena, and
 * zero-magnitude streams skip their MAC work outright. Both transforms
 * are bit-exact — including stats and the fault census — and can be
 * disabled with --no-panel / --no-zero-skip. See DESIGN.md §13.
 */

#ifndef USYS_ARCH_PACKED_ARRAY_H
#define USYS_ARCH_PACKED_ARRAY_H

#include "common/matrix.h"
#include "common/types.h"
#include "arch/array.h"

namespace usys {

/** Word-packed drop-in for SystolicArray::runFold. */
class PackedArray
{
  public:
    explicit PackedArray(const ArrayConfig &cfg);

    /**
     * Run one fold: output (M x C) = input (M x R) x weights (R x C),
     * bit-exact with SystolicArray::runFold (outputs, cycles, stats) —
     * including under an enabled fault plan, where both engines resolve
     * identical fault events per (tile, m, r, c) coordinate.
     *
     * @param stats same contract as SystolicArray::runFold — non-null
     *        accumulates the registry delta for a later ordered flush()
     * @param tile fold index for fault-site resolution (SystolicGemm
     *        numbers folds ti * k_tiles + kt; standalone folds use 0)
     * @param sparsity optional pre-built nonzero-index plan of `input`
     *        (SystolicGemm builds one per staged A-tile and shares it
     *        across column shards). Null means the fold builds its own
     *        when the sparse paths are enabled. Plans encode skips the
     *        engine may take, never results — outputs, cycles, stats,
     *        and the fault census are bit-identical with or without one.
     */
    SystolicArray::FoldResult runFold(const Matrix<i32> &input,
                                      const Matrix<i32> &weights,
                                      FoldStatsDelta *stats = nullptr,
                                      u64 tile = 0,
                                      const SparsityPlan *sparsity =
                                          nullptr) const;

    const ArrayConfig &config() const { return cfg_; }

  private:
    ArrayConfig cfg_;
};

} // namespace usys

#endif // USYS_ARCH_PACKED_ARRAY_H
