/**
 * @file
 * Computing-scheme taxonomy and kernel configuration (Section IV-C2).
 *
 * The five evaluated schemes share the weight-stationary data schedule and
 * differ only in the PE kernel, hence in MAC latency and hardware cost:
 *
 *   BinaryParallel   1-cycle bit-parallel MAC (TPU-like)
 *   BinarySerial     bit-serial multiply over N cycles + 1 accumulate
 *   USystolicRate    unipolar C-BSG uMUL on sign-magnitude data,
 *                    rate-coded, early-terminable to EBT n
 *   USystolicTemporal same but temporal-coded input (no early termination)
 *   UgemmHybrid      uGEMM-H baseline: bipolar uMUL on signed data,
 *                    2^N mul cycles, double area
 *   TubGemm          tubGEMM (Vellaisamy et al.): temporal-unary
 *                    activation x binary weight — the weight register adds
 *                    its full signed value on every asserted input bit, so
 *                    a MAC is exact in 2^(N-1) cycles and a zero-magnitude
 *                    activation stream costs nothing
 *   TuGemm           tuGEMM (Nair et al.): both operands temporal-coded,
 *                    fully serial AND of two deterministic staircase
 *                    streams — exact |a|*|w| in 2^(2(N-1)) cycles with no
 *                    RNG at all
 */

#ifndef USYS_ARCH_SCHEME_H
#define USYS_ARCH_SCHEME_H

#include <string>

#include "common/logging.h"
#include "common/types.h"

namespace usys {

/** PE computing scheme. */
enum class Scheme
{
    BinaryParallel,
    BinarySerial,
    USystolicRate,
    USystolicTemporal,
    UgemmHybrid,
    TubGemm,
    TuGemm,
};

/** Short tag used in experiment tables (BP/BS/UR/UT/UG/TUB/TU). */
inline const char *
schemeTag(Scheme s)
{
    switch (s) {
      case Scheme::BinaryParallel: return "BP";
      case Scheme::BinarySerial: return "BS";
      case Scheme::USystolicRate: return "UR";
      case Scheme::USystolicTemporal: return "UT";
      case Scheme::UgemmHybrid: return "UG";
      case Scheme::TubGemm: return "TUB";
      case Scheme::TuGemm: return "TU";
    }
    return "?";
}

/** True for the schemes that stream unary activations. */
inline bool
isUnary(Scheme s)
{
    return s == Scheme::USystolicRate || s == Scheme::USystolicTemporal ||
           s == Scheme::UgemmHybrid || s == Scheme::TubGemm ||
           s == Scheme::TuGemm;
}

/**
 * True for the schemes whose weight operand is a comparator-generated
 * bitstream (C-BSG with an RNG behind it). tubGEMM keeps the weight
 * binary and tuGEMM's weight staircase is a deterministic counter, so
 * neither has a weight-stream fault site or the 2^(N-1) result rescale.
 */
inline bool
hasWeightBsg(Scheme s)
{
    return s == Scheme::USystolicRate || s == Scheme::USystolicTemporal ||
           s == Scheme::UgemmHybrid;
}

/** PE kernel configuration: scheme, bitwidth, early-termination point. */
struct KernelConfig
{
    Scheme scheme = Scheme::BinaryParallel;

    /** Signed data bitwidth N at the memory interface. */
    int bits = 8;

    /**
     * Effective bitwidth n for rate-coded early termination (Section
     * III-C): 2^(n-1) of the 2^(N-1) unary cycles are executed and the
     * result is scaled back by a left shift of N-n. 0 means full period.
     * Only meaningful for USystolicRate.
     */
    int et_bits = 0;

    /** EBT actually in effect. */
    int
    effectiveBits() const
    {
        if (scheme == Scheme::USystolicRate && et_bits > 0)
            return et_bits;
        return bits;
    }

    /** Multiplication cycles of one MAC. */
    u32
    mulCycles() const
    {
        switch (scheme) {
          case Scheme::BinaryParallel:
            return 1;
          case Scheme::BinarySerial:
            return u32(bits);
          case Scheme::USystolicRate:
            return u32(1) << (effectiveBits() - 1);
          case Scheme::USystolicTemporal:
            return u32(1) << (bits - 1);
          case Scheme::UgemmHybrid:
            return u32(1) << bits;
          case Scheme::TubGemm:
            return u32(1) << (bits - 1);
          case Scheme::TuGemm:
            return u32(1) << (2 * (bits - 1));
        }
        return 1;
    }

    /**
     * Total MAC cycles: multiplication cycles plus one accumulation cycle,
     * except bit-parallel where multiply and accumulate share the cycle.
     */
    u32
    macCycles() const
    {
        if (scheme == Scheme::BinaryParallel)
            return 1;
        return mulCycles() + 1;
    }

    /** Validate invariants; call after construction. */
    void
    check() const
    {
        fatalIf(bits < 2 || bits > 16, "KernelConfig: bits out of range");
        // (The functional unary product tables cap at 13 signed bits;
        // wider unary configs are valid for the timing/cost models.)
        fatalIf(et_bits != 0 && (et_bits < 2 || et_bits > bits),
                "KernelConfig: et_bits must be 0 or in [2, bits]");
        fatalIf(et_bits != 0 && scheme != Scheme::USystolicRate,
                "KernelConfig: early termination requires rate coding");
    }

    /** Human-readable tag, e.g. "UR-8b(ebt6)". */
    std::string
    name() const
    {
        std::string n = schemeTag(scheme);
        n += "-" + std::to_string(bits) + "b";
        if (scheme == Scheme::USystolicRate && et_bits > 0 &&
            et_bits != bits) {
            n += "(ebt" + std::to_string(et_bits) + ")";
        }
        return n;
    }
};

} // namespace usys

#endif // USYS_ARCH_SCHEME_H
