/**
 * @file
 * Synchronizing FIFOs at the array edges (Figure 7) and the jitter
 * tolerance analysis behind "long MAC cycles allow to better hide timing
 * fluctuation of data synchronization in the FIFO, even without on-chip
 * SRAM" (Section III-A).
 *
 * The consumer (a PE row) pops one element per MAC interval; the
 * producer (memory) delivers with latency jitter. The analysis finds the
 * FIFO depth that absorbs a given jitter distribution for each scheme's
 * interval length — a single-entry FIFO suffices for uSystolic where a
 * binary-parallel design needs jitter-deep buffering.
 */

#ifndef USYS_ARCH_FIFO_H
#define USYS_ARCH_FIFO_H

#include <deque>

#include "common/types.h"

namespace usys {

/** Timestamped synchronizing FIFO. */
class SyncFifo
{
  public:
    explicit SyncFifo(int depth) : depth_(depth) {}

    /** True if another element fits. */
    bool canPush() const { return int(ready_at_.size()) < depth_; }

    /**
     * Producer side: enqueue an element that becomes visible at
     * `ready_cycle`.
     *
     * @return false (dropped) when the FIFO is full
     */
    bool
    push(Cycles ready_cycle)
    {
        if (!canPush())
            return false;
        ready_at_.push_back(ready_cycle);
        return true;
    }

    /**
     * Consumer side: pop the oldest element at cycle `now`.
     *
     * @return true if an element was available in time
     */
    bool
    pop(Cycles now)
    {
        if (ready_at_.empty() || ready_at_.front() > now)
            return false;
        ready_at_.pop_front();
        return true;
    }

    int depth() const { return depth_; }
    std::size_t occupancy() const { return ready_at_.size(); }

  private:
    int depth_;
    std::deque<Cycles> ready_at_;
};

/** Result of the Monte-Carlo jitter study. */
struct JitterTolerance
{
    u32 mac_cycles = 0;
    double jitter_std_cycles = 0.0;
    int required_depth = 0;   // smallest stall-free depth observed
    double stall_rate_depth1 = 0.0; // pop-miss rate with a 1-deep FIFO
};

/**
 * Find the FIFO depth that absorbs Gaussian delivery jitter for a
 * consumer popping every `mac_cycles`.
 *
 * @param mac_cycles consumer interval (the scheme's MAC latency)
 * @param jitter_std delivery-latency standard deviation in cycles
 * @param items streamed elements per trial
 * @param seed Monte-Carlo seed
 */
JitterTolerance analyzeJitterTolerance(u32 mac_cycles, double jitter_std,
                                       int items = 2048, u64 seed = 0xF1F0);

} // namespace usys

#endif // USYS_ARCH_FIFO_H
