/**
 * @file
 * Value-sparsity census and compacted nonzero-index plans (DESIGN.md
 * §16).
 *
 * A zero-magnitude operand in a unary scheme produces an all-zero
 * bitstream: its entire MAC, its stream generation, and its toggle
 * activity can be elided without changing a single output bit. The two
 * pieces here make that a first-class, measured property:
 *
 *  - SparsityCensus: per-fold counts of zero activation/weight elements
 *    and the MAC slots an all-zero activation stream makes skippable.
 *    A pure function of the tile data (never of engine execution), so
 *    every engine books identical counts and stats dumps stay
 *    byte-identical whether the skips actually happen or not.
 *
 *  - SparsityPlan: per input row of a staged M x R activation tile, the
 *    compacted list of nonzero column indices. Built once per staged
 *    tile (SystolicGemm panel mode shares one plan across all column
 *    shards that reuse the tile) and consumed by the packed fold's
 *    panel, GEMM-row, and stream-cache paths, which then iterate only
 *    the nonzero work.
 *
 * The uGEMM-H carve-out: its bipolar MAC adds a bias term even for
 * zero-valued operands, so nothing is skippable there — the census
 * still counts its zero operands (data is data) but reports zero
 * skippable MAC slots.
 */

#ifndef USYS_ARCH_SPARSITY_H
#define USYS_ARCH_SPARSITY_H

#include <vector>

#include "common/matrix.h"
#include "common/types.h"
#include "arch/scheme.h"

namespace usys {

/** Per-fold zero-operand census — a pure function of the tile data. */
struct SparsityCensus
{
    u64 zero_acts = 0;      // zero activation elements (M x R tile)
    u64 zero_weights = 0;   // zero weight elements (R x C tile)
    u64 skippable_macs = 0; // MAC slots elided by all-zero act streams

    bool any() const { return zero_acts || zero_weights; }
};

/**
 * Census of one fold's operand tiles. Counted from the engine's input
 * arguments (before any in-fold fault corruption), so the scalar and
 * packed engines book identical values by construction.
 */
SparsityCensus foldSparsityCensus(const KernelConfig &kern,
                                  const Matrix<i32> &input,
                                  const Matrix<i32> &weights);

/** Compacted nonzero column indices per row of an M x R tile. */
class SparsityPlan
{
  public:
    /** (Re)build from a staged activation tile, reusing capacity. */
    void build(const Matrix<i32> &tile);

    bool built() const { return !off_.empty(); }
    int inputRows() const { return int(off_.size()) - 1; }

    /** True when at least one element of the tile is zero (a fully
     *  dense tile makes the compact iteration pure overhead). */
    bool anyZero() const { return any_zero_; }

    /** Nonzero column indices of input row m (rowCount(m) entries). */
    const u32 *rowIdx(int m) const { return idx_.data() + off_[m]; }
    u32 rowCount(int m) const { return off_[m + 1] - off_[m]; }

  private:
    std::vector<u32> idx_;
    std::vector<u32> off_; // off_[m] .. off_[m+1) spans row m in idx_
    bool any_zero_ = false;
};

} // namespace usys

#endif // USYS_ARCH_SPARSITY_H
