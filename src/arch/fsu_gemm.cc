#include "arch/fsu_gemm.h"

#include <vector>

#include "unary/bitstream.h"
#include "unary/uadd.h"
#include "unary/umul.h"

namespace usys {

FsuGemmExecutor::FsuGemmExecutor(int bits)
    : bits_(bits)
{
    fatalIf(bits < 2 || bits > 10,
            "FsuGemmExecutor: bits out of range (stream-level model)");
}

Matrix<double>
FsuGemmExecutor::run(const Matrix<i32> &a, const Matrix<i32> &b) const
{
    fatalIf(a.cols() != b.rows(), "FsuGemmExecutor: shape mismatch");
    const int m_rows = a.rows();
    const int k_dim = a.cols();
    const int n_cols = b.cols();
    const u64 period = u64(1) << bits_;

    // Operand streams are generated once and broadcast (the FSU global
    // interconnect): one bipolar stream per input element row.
    Matrix<double> out(m_rows, n_cols, 0.0);
    for (int m = 0; m < m_rows; ++m) {
        // Materialize this row's input streams once.
        std::vector<std::vector<u8>> in_streams(k_dim);
        for (int k = 0; k < k_dim; ++k) {
            BipolarRateBsg gen(a(m, k), (k % 3) + 3, bits_);
            in_streams[k] = generateBits(gen, period);
        }
        for (int n = 0; n < n_cols; ++n) {
            // K bipolar uMUL product streams feed the mux tree.
            std::vector<std::vector<u8>> products(k_dim);
            for (int k = 0; k < k_dim; ++k) {
                BipolarUmul mul(b(k, n), bits_);
                auto &stream = products[k];
                stream.resize(period);
                for (u64 t = 0; t < period; ++t)
                    stream[t] = mul.step(in_streams[k][t] != 0) ? 1 : 0;
            }
            // Unary-domain accumulation: scaled adder, then bipolar
            // decode. The estimate of sum(v_k) is the scaled 1-count
            // minus the bipolar offset of K streams.
            const double ones_est =
                unaryDomainSum(products, (m + n) % 8);
            out(m, n) = ones_est - double(k_dim) * double(period / 2);
        }
    }
    return out;
}

} // namespace usys
