/**
 * @file
 * Regenerates the paper's abstract headline claims for the edge
 * configuration running 8-bit AlexNet: rate-coded uSystolic vs the
 * binary parallel design.
 */

#include <cstdio>

#include "common/cli.h"
#include "common/event_trace.h"
#include "eval/experiments.h"

using namespace usys;

int
main(int argc, char **argv)
{
    const BenchOptions opts =
        parseBenchArgs(&argc, argv, "headline_summary");

    Headline h;
    {
        ScopedTimer timer("headline_summary", "bench");
        h = headlineSummary();
        // Machine-readable per-layer stats for all five schemes.
        recordInstrumentedSweep(true, 8);
    }
    std::printf("=== Headline summary: 8-bit AlexNet, edge ===\n");
    std::printf("%-44s measured %8.1f   paper %8.1f\n",
                "systolic array area reduction (%)",
                h.array_area_reduction_pct, 59.0);
    std::printf("%-44s measured %8.1f   paper %8.1f\n",
                "total on-chip area reduction (%)",
                h.onchip_area_reduction_pct, 91.3);
    std::printf("%-44s measured %8.1f   paper %8.1f\n",
                "max on-chip energy efficiency gain (x)",
                h.max_energy_eff_x, 112.2);
    std::printf("%-44s measured %8.1f   paper %8.1f\n",
                "max on-chip power efficiency gain (x)",
                h.max_power_eff_x, 44.8);
    std::printf("%-44s measured %8.1f   paper %8.1f\n",
                "mean on-chip energy reduction (%)",
                h.mean_onchip_energy_red_pct, 83.5);
    std::printf("%-44s measured %8.1f   paper %8.1f\n",
                "mean on-chip power reduction (%)",
                h.mean_onchip_power_red_pct, 98.4);
    finalizeBench(opts);
    return 0;
}
