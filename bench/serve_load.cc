/**
 * @file
 * serve_load — closed-loop load generator for the usysd daemon.
 *
 * Spawns an in-process Daemon on an ephemeral port, then hammers it
 * with N concurrent TCP clients (real sockets, real frames — the same
 * path usys_client takes), each issuing R back-to-back requests drawn
 * from a configurable mix:
 *
 *   --mix dup    duplicate-heavy: requests cycle through a small pool
 *                of distinct sweep configs (--pool), so coalescing and
 *                the result cache both get traction (the default);
 *   --mix warm   every request identical — pure cache-hit ceiling;
 *   --mix cold   every request unique (per-client gemm dims) — the
 *                cache never hits and batching only amortises windows.
 *
 * Two phases run the identical workload: "full" (batching + cache on)
 * and "baseline" (--no-batch --no-cache semantics: every job computed
 * inline, serialized). Per-request latency is sampled client-side;
 * the artifact records throughput, p50/p99/p999, batch occupancy and
 * cache hit-rate per phase plus the full/baseline speedup:
 *
 *   serve_load --stats-json BENCH_serve.json --min-speedup 2
 *
 * exits nonzero when full-phase throughput is below --min-speedup x
 * baseline (or hit-rate is below --min-hit-rate).
 *
 * --overload adds a third phase that deliberately outruns capacity:
 * the daemon gets a tiny admission bound (--overload-queue) and a
 * short io timeout, the cache is disabled so every admitted job costs
 * real engine time, one extra connection sends half a frame header
 * and goes silent (it must be reaped by the io timeout, not wedge a
 * handler forever), and every client drives callRetry() with
 * deterministic jittered backoff. The phase proves the hardened
 * daemon keeps serving under pressure: every request eventually
 * succeeds, p99 stays bounded, and the shed/io-timeout counters land
 * in BENCH_serve.json (serve.overload.*). --require-shed turns a
 * zero shed count or an unreaped stall into a failure (the ctest
 * gate).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/stats_registry.h"
#include "serve/client.h"
#include "serve/daemon.h"

namespace {

using namespace usys;

/** One sweep request over a named layer list; distinct bits per slot. */
std::string
makeSweepRequest(u64 id, const std::string &layers, i64 bits)
{
    JsonWriter w(0);
    w.beginObject();
    w.field("op", "sweep");
    w.field("id", id);
    w.field("layers", layers);
    w.beginArray("schemes");
    for (const char *tag : {"BP", "BS", "UR", "UT", "UG"})
        w.value(std::string(tag));
    w.endArray();
    w.beginObject("system");
    w.field("bits", bits);
    w.endObject();
    w.endObject();
    return w.str();
}

/** A gemm request unique per (client, sequence) — the cold mix. */
std::string
makeColdRequest(u64 id, u32 client, u32 seq)
{
    JsonWriter w(0);
    w.beginObject();
    w.field("op", "gemm");
    w.field("id", id);
    w.field("m", i64(16 + client));
    w.field("k", i64(64 + seq));
    w.field("n", i64(32 + client + seq));
    w.endObject();
    return w.str();
}

struct PhaseResult
{
    double wall_s = 0.0;
    double rps = 0.0;
    double p50_us = 0.0, p99_us = 0.0, p999_us = 0.0;
    double occupancy = 0.0;
    double hit_rate = 0.0;
    u64 requests = 0;
};

double
percentile(const std::vector<double> &sorted, unsigned permille)
{
    if (sorted.empty())
        return 0.0;
    std::size_t idx = sorted.size() * permille / 1000;
    if (idx >= sorted.size())
        idx = sorted.size() - 1;
    return sorted[idx];
}

/**
 * Run one phase: boot a daemon with `opts`, aim `clients` threads at
 * it for `requests` rounds each, tear it down, report.
 */
PhaseResult
runPhase(const char *name, DaemonOptions opts, u32 clients, u32 requests,
         const std::string &mix, u32 pool_size, const std::string &layers)
{
    opts.port = 0;
    opts.quiet = true;

    Daemon daemon(opts);
    std::string error;
    fatalIf(!daemon.start(&error),
            std::string("serve_load: daemon start failed: ") + error);
    std::thread server([&daemon] { daemon.run(); });
    const u16 port = daemon.port();

    // Pre-build every request up front so client threads only touch
    // sockets (no shared mutation once they start).
    std::vector<std::string> pool;
    if (mix == "warm") {
        pool.push_back(makeSweepRequest(1, layers, 8));
    } else if (mix == "dup") {
        for (u32 p = 0; p < pool_size; ++p)
            pool.push_back(makeSweepRequest(p + 1, layers,
                                            i64(4 + 2 * (p % 7))));
    }
    std::vector<std::vector<std::string>> plan(clients);
    for (u32 c = 0; c < clients; ++c) {
        plan[c].reserve(requests);
        for (u32 r = 0; r < requests; ++r)
            plan[c].push_back(
                mix == "cold"
                    ? makeColdRequest(u64(c) * requests + r + 1, c, r)
                    : pool[(u64(c) * requests + r) % pool.size()]);
    }

    std::vector<std::vector<double>> latencies(clients);
    std::vector<std::string> failure(clients);
    std::atomic<u32> ready{0};
    std::atomic<bool> go{false};

    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (u32 c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            ServeClient client;
            std::string err;
            if (!client.connect(port, &err)) {
                failure[c] = "connect: " + err;
                ready.fetch_add(1);
                return;
            }
            ready.fetch_add(1);
            while (!go.load(std::memory_order_acquire))
                std::this_thread::yield();
            latencies[c].reserve(requests);
            for (u32 r = 0; r < requests; ++r) {
                const std::string &request = plan[c][r];
                std::string response;
                const auto t0 = std::chrono::steady_clock::now();
                const bool ok = client.call(request, &response);
                const auto t1 = std::chrono::steady_clock::now();
                if (!ok ||
                    response.find("\"ok\":true") == std::string::npos) {
                    failure[c] = !ok ? "transport error"
                                     : "response: " + response.substr(0, 200);
                    break;
                }
                latencies[c].push_back(
                    std::chrono::duration<double, std::micro>(t1 - t0)
                        .count());
            }
        });
    }

    while (ready.load() < clients)
        std::this_thread::yield();
    const auto wall0 = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (auto &t : threads)
        t.join();
    const auto wall1 = std::chrono::steady_clock::now();

    const BatcherStats bstats = daemon.batcherStats();
    const ResultCacheStats cstats = daemon.cacheStats();
    daemon.requestStop();
    server.join();

    for (u32 c = 0; c < clients; ++c)
        fatalIf(!failure[c].empty(), std::string("serve_load: client ") +
                                         std::to_string(c) + " phase " +
                                         name + ": " + failure[c]);

    std::vector<double> all;
    for (const auto &per_client : latencies)
        all.insert(all.end(), per_client.begin(), per_client.end());
    std::sort(all.begin(), all.end());

    PhaseResult res;
    res.requests = all.size();
    res.wall_s =
        std::chrono::duration<double>(wall1 - wall0).count();
    res.rps = res.wall_s > 0.0 ? double(res.requests) / res.wall_s : 0.0;
    res.p50_us = percentile(all, 500);
    res.p99_us = percentile(all, 990);
    res.p999_us = percentile(all, 999);
    res.occupancy = bstats.occupancy();
    const u64 lookups = cstats.hits + cstats.misses;
    res.hit_rate = lookups > 0 ? double(cstats.hits) / double(lookups) : 0.0;

    std::printf("%-9s %7llu req in %7.3f s  %9.1f req/s  "
                "p50 %8.1f us  p99 %8.1f us  p999 %8.1f us  "
                "occ %5.1f  hit %4.2f\n",
                name, (unsigned long long)res.requests, res.wall_s,
                res.rps, res.p50_us, res.p99_us, res.p999_us,
                res.occupancy, res.hit_rate);
    return res;
}

/** Everything the overload phase reports beyond the latency figures. */
struct OverloadResult
{
    PhaseResult phase;
    u64 shed = 0;        // requests refused by the bounded queue
    u64 io_timeouts = 0; // stalled connections reaped
    u64 retries = 0;     // client attempts beyond the first
    double shed_rate = 0.0; // shed / requests received
};

/**
 * The overload phase: clients ≫ capacity against a shed-happy daemon
 * plus one deliberately stalled connection. Latency is end-to-end per
 * logical request, retries included — the number a real caller sees.
 */
OverloadResult
runOverload(u32 clients, u32 requests, u64 window_us, u64 overload_queue)
{
    DaemonOptions opts;
    opts.port = 0;
    opts.quiet = true;
    opts.batch = true;
    opts.cache = false; // every admitted job costs real engine time
    opts.batch_window_us = window_us;
    opts.batch_max = 64;
    opts.max_queued_jobs = overload_queue;
    opts.io_timeout_ms = 250;

    Daemon daemon(opts);
    std::string error;
    fatalIf(!daemon.start(&error),
            std::string("serve_load: overload daemon start failed: ") +
                error);
    std::thread server([&daemon] { daemon.run(); });
    const u16 port = daemon.port();

    // The stalled peer: half a frame header, then silence. The daemon
    // must reap it via SO_RCVTIMEO instead of dedicating a handler
    // thread to it forever.
    Socket stall = connectLoopback(port, &error);
    fatalIf(!stall.valid(),
            std::string("serve_load: stall connect failed: ") + error);
    const char half_header[2] = {0x10, 0x00};
    stall.sendAll(half_header, sizeof(half_header));

    std::vector<std::vector<double>> latencies(clients);
    std::vector<u64> client_retries(clients, 0);
    std::vector<std::string> failure(clients);
    std::atomic<u32> ready{0};
    std::atomic<bool> go{false};

    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (u32 c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            ServeClient client;
            client.setIoTimeoutMs(10000);
            client.connect(port); // failure is just the 1st retriable
            RetryPolicy policy;
            policy.retries = 300;
            policy.backoff_ms = 1;
            policy.jitter_seed = u64(c) + 1;
            ready.fetch_add(1);
            while (!go.load(std::memory_order_acquire))
                std::this_thread::yield();
            latencies[c].reserve(requests);
            for (u32 r = 0; r < requests; ++r) {
                const std::string request =
                    makeColdRequest(u64(c) * requests + r + 1, c, r);
                std::string response, err;
                u32 attempts = 1;
                const auto t0 = std::chrono::steady_clock::now();
                const CallStatus st = client.callRetry(
                    request, &response, policy, &err, &attempts);
                const auto t1 = std::chrono::steady_clock::now();
                client_retries[c] += attempts - 1;
                if (st != CallStatus::Ok) {
                    failure[c] =
                        st == CallStatus::Exhausted
                            ? "retries exhausted: " + err
                            : "server error: " + response.substr(0, 200);
                    break;
                }
                latencies[c].push_back(
                    std::chrono::duration<double, std::micro>(t1 - t0)
                        .count());
            }
        });
    }

    while (ready.load() < clients)
        std::this_thread::yield();
    const auto wall0 = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (auto &t : threads)
        t.join();
    const auto wall1 = std::chrono::steady_clock::now();

    // The stall must have been reaped by now (clients ran well past the
    // 250 ms timeout); poll briefly in case the phase finished fast.
    DaemonStats ds = daemon.daemonStats();
    for (int spin = 0; spin < 100 && ds.io_timeouts == 0; ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        ds = daemon.daemonStats();
    }
    const BatcherStats bstats = daemon.batcherStats();
    daemon.requestStop();
    server.join();

    for (u32 c = 0; c < clients; ++c)
        fatalIf(!failure[c].empty(),
                std::string("serve_load: overload client ") +
                    std::to_string(c) + ": " + failure[c]);

    std::vector<double> all;
    for (const auto &per_client : latencies)
        all.insert(all.end(), per_client.begin(), per_client.end());
    std::sort(all.begin(), all.end());

    OverloadResult res;
    res.phase.requests = all.size();
    res.phase.wall_s =
        std::chrono::duration<double>(wall1 - wall0).count();
    res.phase.rps = res.phase.wall_s > 0.0
                        ? double(res.phase.requests) / res.phase.wall_s
                        : 0.0;
    res.phase.p50_us = percentile(all, 500);
    res.phase.p99_us = percentile(all, 990);
    res.phase.p999_us = percentile(all, 999);
    res.phase.occupancy = bstats.occupancy();
    res.phase.hit_rate = 0.0; // cache disabled by construction
    res.shed = bstats.shed + ds.shed_conns;
    res.io_timeouts = ds.io_timeouts;
    for (const u64 r : client_retries)
        res.retries += r;
    res.shed_rate =
        ds.requests > 0 ? double(bstats.shed) / double(ds.requests) : 0.0;

    std::printf("overload  %7llu req in %7.3f s  %9.1f req/s  "
                "p50 %8.1f us  p99 %8.1f us  shed %llu  "
                "retries %llu  io_timeouts %llu\n",
                (unsigned long long)res.phase.requests, res.phase.wall_s,
                res.phase.rps, res.phase.p50_us, res.phase.p99_us,
                (unsigned long long)res.shed,
                (unsigned long long)res.retries,
                (unsigned long long)res.io_timeouts);
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace usys;

    BenchOptions bench = parseBenchArgs(&argc, argv, "serve_load");

    u32 clients = 64, requests = 8, pool_size = 4, attempts = 1;
    std::string mix = "dup";
    std::string layers = "alexnet";
    double min_speedup = 0.0, min_hit_rate = 0.0;
    u64 window_us = 200, batch_max = 64;
    bool overload = false, require_shed = false;
    u32 overload_clients = 0, overload_requests = 0; // 0 = same as main
    u64 overload_queue = 1;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const auto next = [&]() -> const char * {
            fatalIf(i + 1 >= argc, std::string("missing value for ") + arg);
            return argv[++i];
        };
        if (std::strcmp(arg, "--clients") == 0)
            clients = u32(parseIntFlag("--clients", next(), 1, 10000));
        else if (std::strcmp(arg, "--requests") == 0)
            requests = u32(parseIntFlag("--requests", next(), 1, 100000));
        else if (std::strcmp(arg, "--pool") == 0)
            pool_size = u32(parseIntFlag("--pool", next(), 1, 1024));
        else if (std::strcmp(arg, "--attempts") == 0)
            attempts = u32(parseIntFlag("--attempts", next(), 1, 10));
        else if (std::strcmp(arg, "--mix") == 0)
            mix = next();
        else if (std::strcmp(arg, "--layers") == 0)
            layers = next();
        else if (std::strcmp(arg, "--batch-window-us") == 0)
            window_us =
                u64(parseIntFlag("--batch-window-us", next(), 0, 10000000));
        else if (std::strcmp(arg, "--batch-max") == 0)
            batch_max =
                u64(parseIntFlag("--batch-max", next(), 1, 100000));
        else if (std::strcmp(arg, "--overload") == 0)
            overload = true;
        else if (std::strcmp(arg, "--require-shed") == 0)
            require_shed = true;
        else if (std::strcmp(arg, "--overload-clients") == 0)
            overload_clients =
                u32(parseIntFlag("--overload-clients", next(), 1, 10000));
        else if (std::strcmp(arg, "--overload-requests") == 0)
            overload_requests = u32(
                parseIntFlag("--overload-requests", next(), 1, 100000));
        else if (std::strcmp(arg, "--overload-queue") == 0)
            overload_queue =
                u64(parseIntFlag("--overload-queue", next(), 1, 1000000));
        else if (std::strcmp(arg, "--min-speedup") == 0)
            min_speedup =
                parseDoubleFlag("--min-speedup", next(), 0.0, 1000.0);
        else if (std::strcmp(arg, "--min-hit-rate") == 0)
            min_hit_rate =
                parseDoubleFlag("--min-hit-rate", next(), 0.0, 1.0);
        else
            fatal(std::string("serve_load: unknown argument ") + arg);
    }
    fatalIf(mix != "dup" && mix != "warm" && mix != "cold",
            "serve_load: --mix must be dup, warm, or cold");

    std::printf("serve_load: %u clients x %u requests, mix=%s, pool=%u, "
                "layers=%s\n",
                clients, requests, mix.c_str(), pool_size, layers.c_str());

    DaemonOptions full;
    full.batch = true;
    full.cache = true;
    full.batch_window_us = window_us;
    full.batch_max = u32(batch_max);

    DaemonOptions baseline;
    baseline.batch = false;
    baseline.cache = false;

    // Closed-loop load on a shared host is noisy; when a gate is set,
    // allow a bounded number of re-measurements and report the best
    // attempt (a genuine regression fails every attempt).
    PhaseResult base, fast;
    double speedup = 0.0;
    for (u32 attempt = 0; attempt < attempts; ++attempt) {
        // Baseline first so the full phase cannot ride a warm page cache.
        const PhaseResult b = runPhase("baseline", baseline, clients,
                                       requests, mix, pool_size, layers);
        const PhaseResult f = runPhase("full", full, clients, requests,
                                       mix, pool_size, layers);
        const double s = b.rps > 0.0 ? f.rps / b.rps : 0.0;
        std::printf("attempt %u speedup %.2fx "
                    "(full %.1f req/s vs baseline %.1f req/s)\n",
                    attempt + 1, s, f.rps, b.rps);
        if (s > speedup) {
            speedup = s;
            base = b;
            fast = f;
        }
        if ((min_speedup <= 0.0 || speedup >= min_speedup) &&
            (min_hit_rate <= 0.0 || fast.hit_rate >= min_hit_rate))
            break;
    }

    OverloadResult over;
    if (overload)
        over = runOverload(overload_clients ? overload_clients : clients,
                           overload_requests ? overload_requests : requests,
                           window_us, overload_queue);

    StatsRegistry &reg = statsRegistry();
    reg.counter("serve.load.clients", "concurrent client connections")
        .set(clients);
    reg.counter("serve.load.requests", "requests issued per phase")
        .set(u64(clients) * requests);
    reg.counter("serve.load.pool", "distinct configs in the dup mix")
        .set(pool_size);
    reg.scalar("serve.load.speedup_x",
               "full (batch+cache) vs baseline throughput ratio")
        .set(speedup);
    const struct
    {
        const char *tag;
        const PhaseResult &r;
    } phases[] = {{"full", fast}, {"baseline", base}};
    for (const auto &p : phases) {
        const std::string slug = std::string("serve.") + p.tag;
        reg.scalar(slug + ".rps", "requests per second").set(p.r.rps);
        reg.scalar(slug + ".wall_s", "phase wall time (s)").set(p.r.wall_s);
        reg.scalar(slug + ".p50_us", "median request latency (us)")
            .set(p.r.p50_us);
        reg.scalar(slug + ".p99_us", "p99 request latency (us)")
            .set(p.r.p99_us);
        reg.scalar(slug + ".p999_us", "p999 request latency (us)")
            .set(p.r.p999_us);
        reg.scalar(slug + ".occupancy", "mean jobs per admitted batch")
            .set(p.r.occupancy);
        reg.scalar(slug + ".hit_rate", "result-cache hit fraction")
            .set(p.r.hit_rate);
    }
    if (overload) {
        const PhaseResult &p = over.phase;
        reg.scalar("serve.overload.rps", "requests per second under overload")
            .set(p.rps);
        reg.scalar("serve.overload.wall_s", "overload phase wall time (s)")
            .set(p.wall_s);
        reg.scalar("serve.overload.p50_us",
                   "median end-to-end latency incl. retries (us)")
            .set(p.p50_us);
        reg.scalar("serve.overload.p99_us",
                   "p99 end-to-end latency incl. retries (us)")
            .set(p.p99_us);
        reg.scalar("serve.overload.p999_us",
                   "p999 end-to-end latency incl. retries (us)")
            .set(p.p999_us);
        reg.scalar("serve.overload.occupancy",
                   "mean jobs per admitted batch under overload")
            .set(p.occupancy);
        reg.scalar("serve.overload.hit_rate",
                   "result-cache hit fraction (cache disabled: 0)")
            .set(p.hit_rate);
        reg.counter("serve.overload.shed_total",
                    "requests + connections shed during the phase")
            .set(over.shed);
        reg.counter("serve.overload.io_timeout_total",
                    "stalled connections reaped by the io timeout")
            .set(over.io_timeouts);
        reg.counter("serve.overload.retry_total",
                    "client attempts beyond the first")
            .set(over.retries);
        reg.scalar("serve.overload.shed_rate",
                   "fraction of received requests shed")
            .set(over.shed_rate);
    }
    finalizeBench(bench);

    int rc = 0;
    if (min_speedup > 0.0 && speedup < min_speedup) {
        std::fprintf(stderr,
                     "serve_load: FAIL speedup %.2fx below gate %.2fx\n",
                     speedup, min_speedup);
        rc = 1;
    }
    if (min_hit_rate > 0.0 && fast.hit_rate < min_hit_rate) {
        std::fprintf(stderr,
                     "serve_load: FAIL hit rate %.2f below gate %.2f\n",
                     fast.hit_rate, min_hit_rate);
        rc = 1;
    }
    if (overload && require_shed) {
        if (over.shed == 0) {
            std::fprintf(stderr,
                         "serve_load: FAIL overload phase shed nothing "
                         "(expected a nonzero shed count)\n");
            rc = 1;
        }
        if (over.io_timeouts == 0) {
            std::fprintf(stderr,
                         "serve_load: FAIL stalled connection was not "
                         "reaped by the io timeout\n");
            rc = 1;
        }
    }
    return rc;
}
