/**
 * @file
 * serve_load — closed-loop load generator for the usysd daemon.
 *
 * Spawns an in-process Daemon on an ephemeral port, then hammers it
 * with N concurrent TCP clients (real sockets, real frames — the same
 * path usys_client takes), each issuing R back-to-back requests drawn
 * from a configurable mix:
 *
 *   --mix dup    duplicate-heavy: requests cycle through a small pool
 *                of distinct sweep configs (--pool), so coalescing and
 *                the result cache both get traction (the default);
 *   --mix warm   every request identical — pure cache-hit ceiling;
 *   --mix cold   every request unique (per-client gemm dims) — the
 *                cache never hits and batching only amortises windows.
 *
 * Two phases run the identical workload: "full" (batching + cache on)
 * and "baseline" (--no-batch --no-cache semantics: every job computed
 * inline, serialized). Per-request latency is sampled client-side;
 * the artifact records throughput, p50/p99/p999, batch occupancy and
 * cache hit-rate per phase plus the full/baseline speedup:
 *
 *   serve_load --stats-json BENCH_serve.json --min-speedup 2
 *
 * exits nonzero when full-phase throughput is below --min-speedup x
 * baseline (or hit-rate is below --min-hit-rate).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/stats_registry.h"
#include "serve/client.h"
#include "serve/daemon.h"

namespace {

using namespace usys;

/** One sweep request over a named layer list; distinct bits per slot. */
std::string
makeSweepRequest(u64 id, const std::string &layers, i64 bits)
{
    JsonWriter w(0);
    w.beginObject();
    w.field("op", "sweep");
    w.field("id", id);
    w.field("layers", layers);
    w.beginArray("schemes");
    for (const char *tag : {"BP", "BS", "UR", "UT", "UG"})
        w.value(std::string(tag));
    w.endArray();
    w.beginObject("system");
    w.field("bits", bits);
    w.endObject();
    w.endObject();
    return w.str();
}

/** A gemm request unique per (client, sequence) — the cold mix. */
std::string
makeColdRequest(u64 id, u32 client, u32 seq)
{
    JsonWriter w(0);
    w.beginObject();
    w.field("op", "gemm");
    w.field("id", id);
    w.field("m", i64(16 + client));
    w.field("k", i64(64 + seq));
    w.field("n", i64(32 + client + seq));
    w.endObject();
    return w.str();
}

struct PhaseResult
{
    double wall_s = 0.0;
    double rps = 0.0;
    double p50_us = 0.0, p99_us = 0.0, p999_us = 0.0;
    double occupancy = 0.0;
    double hit_rate = 0.0;
    u64 requests = 0;
};

double
percentile(const std::vector<double> &sorted, unsigned permille)
{
    if (sorted.empty())
        return 0.0;
    std::size_t idx = sorted.size() * permille / 1000;
    if (idx >= sorted.size())
        idx = sorted.size() - 1;
    return sorted[idx];
}

/**
 * Run one phase: boot a daemon with `opts`, aim `clients` threads at
 * it for `requests` rounds each, tear it down, report.
 */
PhaseResult
runPhase(const char *name, DaemonOptions opts, u32 clients, u32 requests,
         const std::string &mix, u32 pool_size, const std::string &layers)
{
    opts.port = 0;
    opts.quiet = true;

    Daemon daemon(opts);
    std::string error;
    fatalIf(!daemon.start(&error),
            std::string("serve_load: daemon start failed: ") + error);
    std::thread server([&daemon] { daemon.run(); });
    const u16 port = daemon.port();

    // Pre-build every request up front so client threads only touch
    // sockets (no shared mutation once they start).
    std::vector<std::string> pool;
    if (mix == "warm") {
        pool.push_back(makeSweepRequest(1, layers, 8));
    } else if (mix == "dup") {
        for (u32 p = 0; p < pool_size; ++p)
            pool.push_back(makeSweepRequest(p + 1, layers,
                                            i64(4 + 2 * (p % 7))));
    }
    std::vector<std::vector<std::string>> plan(clients);
    for (u32 c = 0; c < clients; ++c) {
        plan[c].reserve(requests);
        for (u32 r = 0; r < requests; ++r)
            plan[c].push_back(
                mix == "cold"
                    ? makeColdRequest(u64(c) * requests + r + 1, c, r)
                    : pool[(u64(c) * requests + r) % pool.size()]);
    }

    std::vector<std::vector<double>> latencies(clients);
    std::vector<std::string> failure(clients);
    std::atomic<u32> ready{0};
    std::atomic<bool> go{false};

    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (u32 c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            ServeClient client;
            std::string err;
            if (!client.connect(port, &err)) {
                failure[c] = "connect: " + err;
                ready.fetch_add(1);
                return;
            }
            ready.fetch_add(1);
            while (!go.load(std::memory_order_acquire))
                std::this_thread::yield();
            latencies[c].reserve(requests);
            for (u32 r = 0; r < requests; ++r) {
                const std::string &request = plan[c][r];
                std::string response;
                const auto t0 = std::chrono::steady_clock::now();
                const bool ok = client.call(request, &response);
                const auto t1 = std::chrono::steady_clock::now();
                if (!ok ||
                    response.find("\"ok\":true") == std::string::npos) {
                    failure[c] = !ok ? "transport error"
                                     : "response: " + response.substr(0, 200);
                    break;
                }
                latencies[c].push_back(
                    std::chrono::duration<double, std::micro>(t1 - t0)
                        .count());
            }
        });
    }

    while (ready.load() < clients)
        std::this_thread::yield();
    const auto wall0 = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (auto &t : threads)
        t.join();
    const auto wall1 = std::chrono::steady_clock::now();

    const BatcherStats bstats = daemon.batcherStats();
    const ResultCacheStats cstats = daemon.cacheStats();
    daemon.requestStop();
    server.join();

    for (u32 c = 0; c < clients; ++c)
        fatalIf(!failure[c].empty(), std::string("serve_load: client ") +
                                         std::to_string(c) + " phase " +
                                         name + ": " + failure[c]);

    std::vector<double> all;
    for (const auto &per_client : latencies)
        all.insert(all.end(), per_client.begin(), per_client.end());
    std::sort(all.begin(), all.end());

    PhaseResult res;
    res.requests = all.size();
    res.wall_s =
        std::chrono::duration<double>(wall1 - wall0).count();
    res.rps = res.wall_s > 0.0 ? double(res.requests) / res.wall_s : 0.0;
    res.p50_us = percentile(all, 500);
    res.p99_us = percentile(all, 990);
    res.p999_us = percentile(all, 999);
    res.occupancy = bstats.occupancy();
    const u64 lookups = cstats.hits + cstats.misses;
    res.hit_rate = lookups > 0 ? double(cstats.hits) / double(lookups) : 0.0;

    std::printf("%-9s %7llu req in %7.3f s  %9.1f req/s  "
                "p50 %8.1f us  p99 %8.1f us  p999 %8.1f us  "
                "occ %5.1f  hit %4.2f\n",
                name, (unsigned long long)res.requests, res.wall_s,
                res.rps, res.p50_us, res.p99_us, res.p999_us,
                res.occupancy, res.hit_rate);
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace usys;

    BenchOptions bench = parseBenchArgs(&argc, argv, "serve_load");

    u32 clients = 64, requests = 8, pool_size = 4, attempts = 1;
    std::string mix = "dup";
    std::string layers = "alexnet";
    double min_speedup = 0.0, min_hit_rate = 0.0;
    u64 window_us = 200, batch_max = 64;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const auto next = [&]() -> const char * {
            fatalIf(i + 1 >= argc, std::string("missing value for ") + arg);
            return argv[++i];
        };
        if (std::strcmp(arg, "--clients") == 0)
            clients = u32(parseIntFlag("--clients", next(), 1, 10000));
        else if (std::strcmp(arg, "--requests") == 0)
            requests = u32(parseIntFlag("--requests", next(), 1, 100000));
        else if (std::strcmp(arg, "--pool") == 0)
            pool_size = u32(parseIntFlag("--pool", next(), 1, 1024));
        else if (std::strcmp(arg, "--attempts") == 0)
            attempts = u32(parseIntFlag("--attempts", next(), 1, 10));
        else if (std::strcmp(arg, "--mix") == 0)
            mix = next();
        else if (std::strcmp(arg, "--layers") == 0)
            layers = next();
        else if (std::strcmp(arg, "--batch-window-us") == 0)
            window_us =
                u64(parseIntFlag("--batch-window-us", next(), 0, 10000000));
        else if (std::strcmp(arg, "--batch-max") == 0)
            batch_max =
                u64(parseIntFlag("--batch-max", next(), 1, 100000));
        else if (std::strcmp(arg, "--min-speedup") == 0)
            min_speedup =
                parseDoubleFlag("--min-speedup", next(), 0.0, 1000.0);
        else if (std::strcmp(arg, "--min-hit-rate") == 0)
            min_hit_rate =
                parseDoubleFlag("--min-hit-rate", next(), 0.0, 1.0);
        else
            fatal(std::string("serve_load: unknown argument ") + arg);
    }
    fatalIf(mix != "dup" && mix != "warm" && mix != "cold",
            "serve_load: --mix must be dup, warm, or cold");

    std::printf("serve_load: %u clients x %u requests, mix=%s, pool=%u, "
                "layers=%s\n",
                clients, requests, mix.c_str(), pool_size, layers.c_str());

    DaemonOptions full;
    full.batch = true;
    full.cache = true;
    full.batch_window_us = window_us;
    full.batch_max = u32(batch_max);

    DaemonOptions baseline;
    baseline.batch = false;
    baseline.cache = false;

    // Closed-loop load on a shared host is noisy; when a gate is set,
    // allow a bounded number of re-measurements and report the best
    // attempt (a genuine regression fails every attempt).
    PhaseResult base, fast;
    double speedup = 0.0;
    for (u32 attempt = 0; attempt < attempts; ++attempt) {
        // Baseline first so the full phase cannot ride a warm page cache.
        const PhaseResult b = runPhase("baseline", baseline, clients,
                                       requests, mix, pool_size, layers);
        const PhaseResult f = runPhase("full", full, clients, requests,
                                       mix, pool_size, layers);
        const double s = b.rps > 0.0 ? f.rps / b.rps : 0.0;
        std::printf("attempt %u speedup %.2fx "
                    "(full %.1f req/s vs baseline %.1f req/s)\n",
                    attempt + 1, s, f.rps, b.rps);
        if (s > speedup) {
            speedup = s;
            base = b;
            fast = f;
        }
        if ((min_speedup <= 0.0 || speedup >= min_speedup) &&
            (min_hit_rate <= 0.0 || fast.hit_rate >= min_hit_rate))
            break;
    }

    StatsRegistry &reg = statsRegistry();
    reg.counter("serve.load.clients", "concurrent client connections")
        .set(clients);
    reg.counter("serve.load.requests", "requests issued per phase")
        .set(u64(clients) * requests);
    reg.counter("serve.load.pool", "distinct configs in the dup mix")
        .set(pool_size);
    reg.scalar("serve.load.speedup_x",
               "full (batch+cache) vs baseline throughput ratio")
        .set(speedup);
    const struct
    {
        const char *tag;
        const PhaseResult &r;
    } phases[] = {{"full", fast}, {"baseline", base}};
    for (const auto &p : phases) {
        const std::string slug = std::string("serve.") + p.tag;
        reg.scalar(slug + ".rps", "requests per second").set(p.r.rps);
        reg.scalar(slug + ".wall_s", "phase wall time (s)").set(p.r.wall_s);
        reg.scalar(slug + ".p50_us", "median request latency (us)")
            .set(p.r.p50_us);
        reg.scalar(slug + ".p99_us", "p99 request latency (us)")
            .set(p.r.p99_us);
        reg.scalar(slug + ".p999_us", "p999 request latency (us)")
            .set(p.r.p999_us);
        reg.scalar(slug + ".occupancy", "mean jobs per admitted batch")
            .set(p.r.occupancy);
        reg.scalar(slug + ".hit_rate", "result-cache hit fraction")
            .set(p.r.hit_rate);
    }
    finalizeBench(bench);

    int rc = 0;
    if (min_speedup > 0.0 && speedup < min_speedup) {
        std::fprintf(stderr,
                     "serve_load: FAIL speedup %.2fx below gate %.2fx\n",
                     speedup, min_speedup);
        rc = 1;
    }
    if (min_hit_rate > 0.0 && fast.hit_rate < min_hit_rate) {
        std::fprintf(stderr,
                     "serve_load: FAIL hit rate %.2f below gate %.2f\n",
                     fast.hit_rate, min_hit_rate);
        rc = 1;
    }
    return rc;
}
