/**
 * @file
 * Regenerates Figure 14: mean on-chip energy- and power-efficiency
 * improvements (E.E.I. / P.E.I.) of the unary designs over the binary
 * parallel and serial baselines, on 8-bit AlexNet and the MLPerf-like
 * suite, edge and cloud.
 *
 * Paper shape to reproduce: early termination monotonically increases
 * both efficiencies; MLPerf's diverse GEMMs lower the gains versus
 * AlexNet via reduced MAC utilization (97.1% -> 69.6% edge, 81.6% ->
 * 37.2% cloud).
 */

#include <cstdio>

#include "common/cli.h"
#include "common/event_trace.h"
#include "common/table.h"
#include "eval/experiments.h"
#include "workloads/alexnet.h"
#include "workloads/mlperf.h"

using namespace usys;

namespace {

void
printWorkload(const char *name, const std::vector<GemmLayer> &layers)
{
    for (bool edge : {true, false}) {
        std::printf("\n=== Figure 14: %s, %s ===\n", name,
                    edge ? "edge" : "cloud");
        const auto rows = fig14Efficiency(edge, 8, layers);
        TablePrinter table({"design", "baseline", "E.E.I. (x)",
                            "P.E.I. (x)"});
        for (const auto &row : rows) {
            table.addRow({row.candidate, row.baseline,
                          TablePrinter::num(row.energy_eff_x, 2),
                          TablePrinter::num(row.power_eff_x, 2)});
        }
        table.print();
        std::printf("mean MAC utilization: %.1f%%\n",
                    100.0 * meanUtilization(edge, 8, layers));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts =
        parseBenchArgs(&argc, argv, "fig14_efficiency");
    {
        ScopedTimer timer("fig14 alexnet", "bench");
        printWorkload("AlexNet", alexnetLayers());
    }
    const auto mlperf = mlperfLayers();
    std::printf("\nMLPerf-like suite: %zu GEMM layers across 8 models "
                "(paper: 1094)\n", mlperf.size());
    {
        ScopedTimer timer("fig14 mlperf", "bench");
        printWorkload("MLPerf", mlperf);
    }
    std::printf("\n(paper utilization: AlexNet 97.1%% edge / 81.6%% cloud;"
                " MLPerf 69.6%% edge / 37.2%% cloud)\n");
    finalizeBench(opts);
    return 0;
}
