/**
 * @file
 * Regenerates Figure 13 (layerwise energy, on-chip and total) and the
 * Section V-F power discussion for 8-bit AlexNet.
 *
 * Paper shape to reproduce: SRAM leakage dominates binary on-chip energy;
 * uSystolic cuts on-chip energy (mean ~83.5% vs BP on the edge) and
 * on-chip power (~98.4%), but the DRAM-dominated *total* energy can get
 * worse for convolutions because SRAM-less uSystolic re-streams the
 * im2col-expanded IFM from DRAM (Section V-E).
 */

#include <cstdio>

#include "common/cli.h"
#include "common/event_trace.h"
#include "common/stats.h"
#include "common/table.h"
#include "eval/experiments.h"

using namespace usys;

namespace {

void
printConfig(bool edge)
{
    std::printf("\n=== Figure 13: %s, 8-bit AlexNet ===\n",
                edge ? "edge (12x14)" : "cloud (256x256)");
    const auto rows = sweepAlexnet(edge, paperCandidates(8));
    TablePrinter table({"layer", "design", "SA dyn uJ", "SA leak uJ",
                        "SRAM dyn uJ", "SRAM leak uJ", "on-chip uJ",
                        "DRAM uJ", "total uJ", "on-chip mW", "total mW"});
    for (const auto &row : rows) {
        const auto &e = row.energy;
        table.addRow({row.layer, row.candidate,
                      TablePrinter::num(e.array_dyn_uj, 2),
                      TablePrinter::num(e.array_leak_uj, 2),
                      TablePrinter::num(e.sram_dyn_uj, 2),
                      TablePrinter::num(e.sram_leak_uj, 2),
                      TablePrinter::num(e.onchip_uj(), 2),
                      TablePrinter::num(e.dram_uj, 2),
                      TablePrinter::num(e.total_uj(), 2),
                      TablePrinter::num(e.onchip_power_mw(), 3),
                      TablePrinter::num(e.total_power_mw(), 3)});
    }
    table.print();

    // Reduction statistics vs the binary baselines (Sections V-E/V-F).
    for (const char *base : {"Binary Parallel", "Binary Serial"}) {
        OnlineStats onchip_e, total_e, onchip_p, total_p, edp;
        for (const auto &row : rows) {
            if (row.candidate.rfind("Unary", 0) != 0)
                continue;
            for (const auto &b : rows) {
                if (b.layer != row.layer || b.candidate != base)
                    continue;
                onchip_e.add(pctReduction(b.energy.onchip_uj(),
                                          row.energy.onchip_uj()));
                total_e.add(pctReduction(b.energy.total_uj(),
                                         row.energy.total_uj()));
                onchip_p.add(pctReduction(b.energy.onchip_power_mw(),
                                          row.energy.onchip_power_mw()));
                total_p.add(pctReduction(b.energy.total_power_mw(),
                                         row.energy.total_power_mw()));
                edp.add(pctReduction(b.energy.edp_onchip(),
                                     row.energy.edp_onchip()));
            }
        }
        std::printf("uSystolic vs %s: on-chip energy red [%.1f, %.1f] "
                    "mean %.1f %%; total energy red [%.1f, %.1f] mean "
                    "%.1f %%; on-chip power red mean %.1f %%; total power "
                    "red mean %.1f %%; on-chip EDP red mean %.1f %%\n",
                    base, onchip_e.min(), onchip_e.max(), onchip_e.mean(),
                    total_e.min(), total_e.max(), total_e.mean(),
                    onchip_p.mean(), total_p.mean(), edp.mean());
    }
    if (edge) {
        std::printf("(paper edge: on-chip energy red [50.0, 99.1] mean "
                    "83.5 vs BP; total energy red mean -754.0; on-chip "
                    "power red mean 98.4)\n");
    } else {
        std::printf("(paper cloud: on-chip energy red mean 47.6 vs BP; "
                    "total energy red mean 18.1; on-chip power red mean "
                    "66.4)\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(&argc, argv, "fig13_energy");
    {
        ScopedTimer timer("fig13 edge", "bench");
        printConfig(true);
    }
    {
        ScopedTimer timer("fig13 cloud", "bench");
        printConfig(false);
    }
    finalizeBench(opts);
    return 0;
}
