/**
 * @file
 * Regenerates Figure 11: systolic-array area breakdown (IREG / WREG /
 * MUL / ACC) plus SRAM for 8- and 16-bit designs, edge and cloud.
 *
 * Paper shape to reproduce: BP > BS > UG > UR > UT in array area
 * (reductions vs BP of 30.9 / 50.9 / 59.0 / 62.5 % for the 8-bit edge),
 * UR's MUL ~58% smaller than uGEMM-H's bipolar MUL, and on-chip SRAM
 * dominating total area (91.3% total reduction when eliminated).
 */

#include <cstdio>

#include "common/cli.h"
#include "common/event_trace.h"
#include "common/stats.h"
#include "common/stats_registry.h"
#include "common/table.h"
#include "eval/experiments.h"

using namespace usys;

namespace {

void
printConfig(bool edge, int bits)
{
    std::printf("\n=== Figure 11%s: %s, %d-bit ===\n", edge ? "a" : "b",
                edge ? "edge (12x14)" : "cloud (256x256)", bits);
    const auto rows = fig11Area(edge, bits);
    TablePrinter table({"design", "IREG", "WREG", "MUL", "ACC",
                        "array mm2", "SRAM mm2", "total mm2",
                        "array red %", "total red %"});
    const AreaRow &bp = rows.front();
    for (const auto &row : rows) {
        table.addRow(
            {row.label, TablePrinter::num(row.blocks_mm2.ireg, 4),
             TablePrinter::num(row.blocks_mm2.wreg, 4),
             TablePrinter::num(row.blocks_mm2.mul, 4),
             TablePrinter::num(row.blocks_mm2.acc, 4),
             TablePrinter::num(row.array_mm2, 4),
             TablePrinter::num(row.sram_mm2, 3),
             TablePrinter::num(row.total_mm2, 3),
             TablePrinter::num(pctReduction(bp.array_mm2, row.array_mm2),
                               1),
             TablePrinter::num(pctReduction(bp.total_mm2, row.total_mm2),
                               1)});
    }
    table.print();

    if (edge && bits == 8) {
        const AreaRow *ug = nullptr, *ur = nullptr;
        for (const auto &row : rows) {
            if (row.label.rfind("UG", 0) == 0)
                ug = &row;
            if (row.label.rfind("UR", 0) == 0)
                ur = &row;
        }
        std::printf("UR MUL vs UG MUL: %.1f%% smaller (paper 58.2%%); "
                    "UR total vs UG total: %.1f%% smaller (paper 16.5%%)\n",
                    pctReduction(ug->blocks_mm2.mul, ur->blocks_mm2.mul),
                    pctReduction(ug->array_mm2, ur->array_mm2));
        std::printf("paper array reductions vs BP: BS 30.9, UG 50.9, "
                    "UR 59.0, UT 62.5 %%\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(&argc, argv, "fig11_area");
    for (bool edge : {true, false}) {
        for (int bits : {8, 16}) {
            ScopedTimer timer(std::string("fig11 ") +
                                  (edge ? "edge" : "cloud") +
                                  std::to_string(bits) + "b",
                              "bench");
            printConfig(edge, bits);
            // Record the per-design totals for the JSON artifact.
            StatsRegistry &reg = statsRegistry();
            const std::string cfg =
                std::string(edge ? "edge" : "cloud") +
                std::to_string(bits) + "b";
            for (const auto &row : fig11Area(edge, bits)) {
                const std::string base = "hw.area." + cfg + "." +
                                         sanitizeStatName(row.label);
                reg.scalar(base + ".array_mm2", "array area")
                    .set(row.array_mm2);
                reg.scalar(base + ".sram_mm2", "SRAM area")
                    .set(row.sram_mm2);
                reg.scalar(base + ".total_mm2", "on-chip area")
                    .set(row.total_mm2);
            }
        }
    }
    finalizeBench(opts);
    return 0;
}
