/**
 * @file
 * Regenerates Figure 11: systolic-array area breakdown (IREG / WREG /
 * MUL / ACC) plus SRAM for 8- and 16-bit designs, edge and cloud.
 *
 * Paper shape to reproduce: BP > BS > UG > UR > UT in array area
 * (reductions vs BP of 30.9 / 50.9 / 59.0 / 62.5 % for the 8-bit edge),
 * UR's MUL ~58% smaller than uGEMM-H's bipolar MUL, and on-chip SRAM
 * dominating total area (91.3% total reduction when eliminated).
 */

#include <cstdio>

#include "common/stats.h"
#include "common/table.h"
#include "eval/experiments.h"

using namespace usys;

namespace {

void
printConfig(bool edge, int bits)
{
    std::printf("\n=== Figure 11%s: %s, %d-bit ===\n", edge ? "a" : "b",
                edge ? "edge (12x14)" : "cloud (256x256)", bits);
    const auto rows = fig11Area(edge, bits);
    TablePrinter table({"design", "IREG", "WREG", "MUL", "ACC",
                        "array mm2", "SRAM mm2", "total mm2",
                        "array red %", "total red %"});
    const AreaRow &bp = rows.front();
    for (const auto &row : rows) {
        table.addRow(
            {row.label, TablePrinter::num(row.blocks_mm2.ireg, 4),
             TablePrinter::num(row.blocks_mm2.wreg, 4),
             TablePrinter::num(row.blocks_mm2.mul, 4),
             TablePrinter::num(row.blocks_mm2.acc, 4),
             TablePrinter::num(row.array_mm2, 4),
             TablePrinter::num(row.sram_mm2, 3),
             TablePrinter::num(row.total_mm2, 3),
             TablePrinter::num(pctReduction(bp.array_mm2, row.array_mm2),
                               1),
             TablePrinter::num(pctReduction(bp.total_mm2, row.total_mm2),
                               1)});
    }
    table.print();

    if (edge && bits == 8) {
        const AreaRow *ug = nullptr, *ur = nullptr;
        for (const auto &row : rows) {
            if (row.label.rfind("UG", 0) == 0)
                ug = &row;
            if (row.label.rfind("UR", 0) == 0)
                ur = &row;
        }
        std::printf("UR MUL vs UG MUL: %.1f%% smaller (paper 58.2%%); "
                    "UR total vs UG total: %.1f%% smaller (paper 16.5%%)\n",
                    pctReduction(ug->blocks_mm2.mul, ur->blocks_mm2.mul),
                    pctReduction(ug->array_mm2, ur->array_mm2));
        std::printf("paper array reductions vs BP: BS 30.9, UG 50.9, "
                    "UR 59.0, UT 62.5 %%\n");
    }
}

} // namespace

int
main()
{
    for (bool edge : {true, false})
        for (int bits : {8, 16})
            printConfig(edge, bits);
    return 0;
}
