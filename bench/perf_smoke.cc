/**
 * @file
 * Scalar-vs-packed kernel microbenchmark with a machine-readable
 * artifact (BENCH_kernels.json by default).
 *
 * Times SystolicArray::runFold (the scalar reference engine) against
 * PackedArray::runFold on one 8-bit 16x16 weight-stationary tile per
 * scheme, asserts the outputs agree, records per-fold latencies and
 * speedups in the stats registry under kernel.<tag>.*, and writes the
 * standard stats artifact (schema: tools/bench_kernels_schema.json).
 *
 * With --min-speedup X the binary exits nonzero if the full-period UR
 * speedup falls short — the hook the perf ctest uses to enforce the
 * packed engine's >= 10x floor. Timings use the median of several
 * trials so a loaded CI host doesn't flake the check.
 *
 * A second section times each dispatched SIMD kernel (common/simd.h)
 * generic-vs-best-available (AVX-512 when the host has it, else AVX2)
 * and records simd.<tag>.* stats plus the per-tier availability flags.
 * The SIMD gates self-skip per tier: --min-simd-speedup X (bulk
 * popcount) and --min-gemm-row-speedup X (widening GEMM row) are
 * enforced only when some vector tier is available — on generic-only
 * hosts the ratio is 1 by construction and the gates print a skip
 * note instead of failing.
 *
 * A third section times the cache-blocked panel GEMM (DESIGN.md §13)
 * against the legacy unblocked path on a 64x64 8-bit UR tile, records
 * panel.gemm.* stats, and with --min-panel-speedup X exits nonzero
 * when blocking falls short of the floor.
 *
 * A fourth section times the sparsity subsystem (DESIGN.md §16):
 * dense-vs-sparse packed folds at 0/50/90% activation sparsity on a
 * 64x64 8-bit UR tile, asserting bit-identical outputs first, and
 * records sparsity.s{0,50,90}.* stats. --min-sparse-speedup X gates
 * the 90% point; the gate self-skips when the fold is too fast to
 * time reliably on a starved host.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/event_trace.h"
#include "common/logging.h"
#include "common/prng.h"
#include "common/profiler.h"
#include "common/simd.h"
#include "common/stats_registry.h"
#include "arch/packed_array.h"

namespace usys {
namespace {

Matrix<i32>
randomCodes(int rows, int cols, Prng &prng)
{
    Matrix<i32> m(rows, cols);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            m(r, c) = i32(prng.below(255)) - 127;
    return m;
}

/** Median per-fold wall time in microseconds over `trials` timed runs. */
template <typename Fn>
double
medianUsPerFold(Fn &&fold, int reps, int trials)
{
    std::vector<double> samples;
    fold(); // warm caches before timing
    for (int t = 0; t < trials; ++t) {
        const auto start = std::chrono::steady_clock::now();
        for (int r = 0; r < reps; ++r)
            fold();
        const auto stop = std::chrono::steady_clock::now();
        const double us =
            std::chrono::duration<double, std::micro>(stop - start)
                .count();
        samples.push_back(us / double(reps));
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

/** One timed chunk: `reps` calls, reported as us per call. */
template <typename Fn>
double
chunkUs(Fn &&fold, int reps)
{
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r)
        fold();
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(stop - start)
               .count() /
           double(reps);
}

struct KernelPoint
{
    const char *tag; // stat slug under kernel.<tag>.*
    KernelConfig kern;
    int scalar_reps;
};

} // namespace
} // namespace usys

int
main(int argc, char **argv)
{
    using namespace usys;

    BenchOptions opts = parseBenchArgs(&argc, argv, "perf_smoke");
    if (opts.stats_json.empty())
        opts.stats_json = "BENCH_kernels.json";

    double min_speedup = 0.0, min_simd_speedup = 0.0;
    double min_gemm_row_speedup = 0.0, min_panel_speedup = 0.0;
    double min_sparse_speedup = 0.0;
    double max_profile_overhead_pct = 0.0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--min-speedup") == 0) {
            fatalIf(i + 1 >= argc, "--min-speedup requires a value");
            min_speedup = parseDoubleFlag("--min-speedup", argv[++i],
                                          0.0, 1e6);
        } else if (std::strcmp(argv[i], "--min-simd-speedup") == 0) {
            fatalIf(i + 1 >= argc, "--min-simd-speedup requires a value");
            min_simd_speedup = parseDoubleFlag("--min-simd-speedup",
                                               argv[++i], 0.0, 1e6);
        } else if (std::strcmp(argv[i], "--min-gemm-row-speedup") == 0) {
            fatalIf(i + 1 >= argc,
                    "--min-gemm-row-speedup requires a value");
            min_gemm_row_speedup = parseDoubleFlag(
                "--min-gemm-row-speedup", argv[++i], 0.0, 1e6);
        } else if (std::strcmp(argv[i], "--min-panel-speedup") == 0) {
            fatalIf(i + 1 >= argc,
                    "--min-panel-speedup requires a value");
            min_panel_speedup = parseDoubleFlag("--min-panel-speedup",
                                                argv[++i], 0.0, 1e6);
        } else if (std::strcmp(argv[i], "--min-sparse-speedup") == 0) {
            fatalIf(i + 1 >= argc,
                    "--min-sparse-speedup requires a value");
            min_sparse_speedup = parseDoubleFlag("--min-sparse-speedup",
                                                 argv[++i], 0.0, 1e6);
        } else if (std::strcmp(argv[i], "--max-profile-overhead-pct") ==
                   0) {
            fatalIf(i + 1 >= argc,
                    "--max-profile-overhead-pct requires a value");
            max_profile_overhead_pct = parseDoubleFlag(
                "--max-profile-overhead-pct", argv[++i], 0.0, 1e6);
        } else {
            fatal(std::string("perf_smoke: unknown argument: ") + argv[i]);
        }
    }

    const int bits = 8;
    const int dim = 16; // 16x16 tile, 16 input rows
    ArrayConfig cfg;
    cfg.rows = dim;
    cfg.cols = dim;

    // Full-period UR is the headline kernel (the acceptance floor);
    // the rest give every unary scheme a perf trajectory.
    const KernelPoint points[] = {
        {"ur", {Scheme::USystolicRate, bits, 0}, 5},
        {"ur_ebt6", {Scheme::USystolicRate, bits, 6}, 10},
        {"ut", {Scheme::USystolicTemporal, bits, 0}, 5},
        {"ug", {Scheme::UgemmHybrid, bits, 0}, 3},
        {"bs", {Scheme::BinarySerial, bits, 0}, 20},
        {"tub", {Scheme::TubGemm, bits, 0}, 5},
        // tuGEMM's scalar engine walks 2^(2(N-1)) cycles per fold — a
        // single rep keeps the bench's wall time sane.
        {"tu", {Scheme::TuGemm, bits, 0}, 1},
    };

    StatsRegistry &reg = statsRegistry();
    reg.counter("kernel.tile.rows", "benchmark tile rows").set(u64(dim));
    reg.counter("kernel.tile.cols", "benchmark tile cols").set(u64(dim));
    reg.counter("kernel.tile.m", "input rows per fold").set(u64(dim));
    reg.counter("kernel.tile.bits", "data bitwidth").set(u64(bits));

    double ur_speedup = 0.0;
    {
        ScopedTimer timer("perf_smoke", "bench");
        USYS_PROF_SCOPE("perf.kernels");
        Prng prng(17);
        const auto input = randomCodes(dim, dim, prng);
        const auto weights = randomCodes(dim, dim, prng);

        std::printf("%-10s %14s %14s %10s\n", "kernel", "scalar us/fold",
                    "packed us/fold", "speedup");
        for (const auto &p : points) {
            cfg.kernel = p.kern;
            const SystolicArray scalar(cfg);
            const PackedArray packed(cfg);

            // Equivalence sanity: a perf number for a wrong kernel is
            // worse than no number.
            FoldStatsDelta scratch;
            const auto ref = scalar.runFold(input, weights, &scratch);
            const auto got = packed.runFold(input, weights, &scratch);
            fatalIf(!(ref.output == got.output) || ref.cycles != got.cycles,
                    std::string("packed/scalar mismatch for ") +
                        p.kern.name());

            const double scalar_us = medianUsPerFold(
                [&] { scalar.runFold(input, weights, &scratch); },
                p.scalar_reps, 3);
            const double packed_us = medianUsPerFold(
                [&] { packed.runFold(input, weights, &scratch); },
                p.scalar_reps * 20, 3);
            const double speedup = scalar_us / packed_us;
            if (std::strcmp(p.tag, "ur") == 0)
                ur_speedup = speedup;

            const std::string slug = std::string("kernel.") + p.tag;
            reg.scalar(slug + ".scalar_us", "scalar reference us per fold")
                .set(scalar_us);
            reg.scalar(slug + ".packed_us", "packed engine us per fold")
                .set(packed_us);
            reg.scalar(slug + ".speedup_x", "scalar/packed fold-time ratio")
                .set(speedup);
            std::printf("%-10s %14.2f %14.2f %9.1fx\n", p.kern.name().c_str(),
                        scalar_us, packed_us, speedup);
        }
    }

    // ---- Profiling overhead guard -------------------------------------
    // The profiler's disabled path must be invisible in the headline
    // packed UR kernel: compare two identical profiling-off measurements
    // (an A/A run — the scopes compiled in both times, recording in
    // neither) and require them within --max-profile-overhead-pct. The
    // enabled-scopes delta is recorded for trend-watching but not gated:
    // it prices the scopes themselves, which are opt-in.
    double profile_off_delta_pct = 0.0;
    {
        Profiler &prof = Profiler::global();
        const bool was_profiling = prof.enabled();
        Prng prng(17);
        const auto input = randomCodes(dim, dim, prng);
        const auto weights = randomCodes(dim, dim, prng);
        cfg.kernel = {Scheme::USystolicRate, bits, 0};
        const PackedArray packed(cfg);
        FoldStatsDelta scratch;
        auto fold = [&] { packed.runFold(input, weights, &scratch); };

        // Interleave the A / B / scopes-on trials and take the minimum
        // of each: sequential blocks see monotonic frequency drift
        // (turbo decay under sustained load) as a fake A-vs-B delta,
        // while interleaved chunks expose all three measurements to
        // the same drift. Min-of-trials then squeezes out scheduler
        // noise — what an A/A comparison at a 2% tolerance needs.
        double baseline_us = 1e300, off_us = 1e300, on_us = 1e300;
        prof.setEnabled(false);
        fold(); // warm caches and arenas before timing
        for (int t = 0; t < 9; ++t) {
            baseline_us = std::min(baseline_us, chunkUs(fold, 200));
            off_us = std::min(off_us, chunkUs(fold, 200));
            prof.setEnabled(true);
            on_us = std::min(on_us, chunkUs(fold, 200));
            prof.setEnabled(false);
        }
        prof.setEnabled(was_profiling);

        profile_off_delta_pct =
            100.0 * std::abs(off_us - baseline_us) / baseline_us;
        const double on_delta_pct =
            100.0 * (on_us - baseline_us) / baseline_us;
        reg.scalar("kernel.profile_overhead.baseline_us",
                   "packed UR fold, profiling disabled (pass A)")
            .set(baseline_us);
        reg.scalar("kernel.profile_overhead.off_us",
                   "packed UR fold, profiling disabled (pass B)")
            .set(off_us);
        reg.scalar("kernel.profile_overhead.on_us",
                   "packed UR fold, scopes recording")
            .set(on_us);
        reg.scalar("kernel.profile_overhead.off_delta_pct",
                   "|A - B| / A of the disabled-profiling passes")
            .set(profile_off_delta_pct);
        std::printf("\nprofile overhead: off %.2f/%.2f us (%.2f%% A/A), "
                    "on %.2f us (%+.2f%%)\n",
                    baseline_us, off_us, profile_off_delta_pct, on_us,
                    on_delta_pct);
    }

    // ---- SIMD kernel tier: generic vs best-available ------------------
    // "Best" is the highest tier the host supports (AVX-512 over AVX2);
    // each tier's availability is recorded so downstream comparisons
    // (bench_kernels_regress) can exempt host-dependent sections.
    const SimdKernels &gen = genericKernels();
    const SimdKernels *best = avx512Kernels();
    if (!best)
        best = avx2Kernels();
    if (!best)
        best = neonKernels();
    const bool have_simd = best != nullptr;
    reg.counter("simd.avx2_available",
                "1 when the AVX2 kernel table is usable on this host")
        .set(u64(avx2Kernels() != nullptr));
    reg.counter("simd.avx512_available",
                "1 when the AVX-512 kernel table is usable on this host")
        .set(u64(avx512Kernels() != nullptr));
    reg.counter("simd.neon_available",
                "1 when the NEON kernel table is usable on this host")
        .set(u64(neonKernels() != nullptr));
    reg.counter("simd.active_level",
                "dispatched SIMD tier (0 generic, 1 avx2, 2 avx512, "
                "3 neon)")
        .set(u64(simdLevel()));

    double popcount_speedup = 1.0;
    double gemm_row_speedup = 1.0;
    {
        ScopedTimer timer("perf_smoke_simd", "bench");
        USYS_PROF_SCOPE("perf.simd");
        Prng prng(29);
        const std::size_t nwords = std::size_t(1) << 15; // 2 Mbit
        std::vector<u64> words(nwords);
        for (auto &w : words)
            w = prng.next();
        const u32 nvals = u32(1) << 16;
        std::vector<u32> vals(nvals);
        for (auto &v : vals)
            v = u32(prng.below(257));
        std::vector<u64> pack_a(nvals / 64), pack_b(nvals / 64);
        std::vector<u32> pfx_a(nwords + 1), pfx_b(nwords + 1);
        const int vn = 4096;
        // The i64 output row spills L1 at vn (32 KiB of c alone), which
        // would measure DRAM bandwidth instead of the kernel — keep the
        // integer GEMM row L1-resident (b + both c copies = 40 KiB)
        // while amortizing per-call dispatch overhead.
        const int gn = 2048;
        std::vector<float> fb(vn), fc_a(vn), fc_b(vn);
        std::vector<i32> ib(gn);
        std::vector<i64> ic_a(gn, 0), ic_b(gn, 0);
        for (int j = 0; j < vn; ++j) {
            fb[j] = float(prng.uniform(-1.0, 1.0));
            fc_a[j] = fc_b[j] = float(prng.uniform(-1.0, 1.0));
        }
        for (int j = 0; j < gn; ++j)
            ib[j] = i32(prng.next());

        // Parity before timing: a fast wrong kernel must fail here, not
        // ship a perf number.
        const SimdKernels &chk = have_simd ? *best : gen;
        fatalIf(gen.popcountWords(words.data(), nwords) !=
                    chk.popcountWords(words.data(), nwords),
                "simd popcount parity failure");
        gen.thresholdPackWords(vals.data(), nvals, 128, pack_a.data());
        chk.thresholdPackWords(vals.data(), nvals, 128, pack_b.data());
        fatalIf(pack_a != pack_b, "simd threshold-pack parity failure");
        gen.prefixPopcount(words.data(), u32(nwords), pfx_a.data());
        chk.prefixPopcount(words.data(), u32(nwords), pfx_b.data());
        fatalIf(pfx_a != pfx_b, "simd prefix-popcount parity failure");
        gen.axpyF32(fc_a.data(), fb.data(), 0.25f, vn);
        chk.axpyF32(fc_b.data(), fb.data(), 0.25f, vn);
        fatalIf(std::memcmp(fc_a.data(), fc_b.data(),
                            std::size_t(vn) * sizeof(float)) != 0,
                "simd axpy parity failure");
        gen.gemmRowI32(ic_a.data(), ib.data(), -12345, gn);
        chk.gemmRowI32(ic_b.data(), ib.data(), -12345, gn);
        fatalIf(ic_a != ic_b, "simd gemm-row parity failure");

        std::printf("\n%-16s %14s %14s %10s   (active: %s)\n",
                    "simd kernel", "generic us", "simd us", "speedup",
                    simdLevelName(simdLevel()));
        volatile u64 sink = 0;
        auto record = [&](const char *tag, auto &&gen_fn, auto &&best_fn,
                          int reps) {
            // Interleaved min-of-chunks, same trick as the profiler
            // overhead guard: both kernels sample every point of the
            // turbo-frequency decay, so the ratio reflects the kernels
            // rather than which one was timed first.
            gen_fn();
            best_fn(); // warm caches before timing
            double gen_us = 1e300, best_us = 1e300;
            for (int t = 0; t < 7; ++t) {
                gen_us = std::min(gen_us, chunkUs(gen_fn, reps));
                best_us = std::min(best_us, chunkUs(best_fn, reps));
            }
            const double speedup = gen_us / best_us;
            const std::string slug = std::string("simd.") + tag;
            reg.scalar(slug + ".generic_us",
                       "portable kernel us per call")
                .set(gen_us);
            reg.scalar(slug + ".simd_us",
                       "best-available kernel us per call")
                .set(best_us);
            reg.scalar(slug + ".speedup_x",
                       "generic/simd kernel-time ratio")
                .set(speedup);
            std::printf("%-16s %14.3f %14.3f %9.1fx\n", tag, gen_us,
                        best_us, speedup);
            return speedup;
        };

        popcount_speedup = record(
            "popcount",
            [&] { sink = sink + gen.popcountWords(words.data(), nwords); },
            [&] { sink = sink + chk.popcountWords(words.data(), nwords); },
            50);
        record(
            "threshold_pack",
            [&] {
                gen.thresholdPackWords(vals.data(), nvals, 128,
                                       pack_a.data());
            },
            [&] {
                chk.thresholdPackWords(vals.data(), nvals, 128,
                                       pack_b.data());
            },
            50);
        record(
            "prefix_popcount",
            [&] {
                gen.prefixPopcount(words.data(), u32(nwords),
                                   pfx_a.data());
            },
            [&] {
                chk.prefixPopcount(words.data(), u32(nwords),
                                   pfx_b.data());
            },
            50);
        record(
            "axpy_f32",
            [&] { gen.axpyF32(fc_a.data(), fb.data(), 1.0f, vn); },
            [&] { chk.axpyF32(fc_b.data(), fb.data(), 1.0f, vn); }, 500);
        gemm_row_speedup = record(
            "gemm_row_i32",
            [&] { gen.gemmRowI32(ic_a.data(), ib.data(), 7, gn); },
            [&] { chk.gemmRowI32(ic_b.data(), ib.data(), 7, gn); },
            2000);
    }

    // ---- Panel GEMM: cache-blocked vs legacy unblocked ----------------
    // A 64x64 8-bit UR tile with 64 input rows — big enough that the
    // unblocked path re-queries weight streams per MAC while the panel
    // path reuses L2-resident count tables. Outputs must be identical
    // before either number is recorded.
    double panel_speedup = 1.0;
    {
        ScopedTimer timer("perf_smoke_panel", "bench");
        USYS_PROF_SCOPE("perf.panel");
        const int pdim = 64;
        Prng prng(43);
        const auto input = randomCodes(pdim, pdim, prng);
        const auto weights = randomCodes(pdim, pdim, prng);
        ArrayConfig pcfg;
        pcfg.rows = pdim;
        pcfg.cols = pdim;
        pcfg.kernel = {Scheme::USystolicRate, bits, 0};
        const PackedArray packed(pcfg);
        FoldStatsDelta scratch;

        const bool was_panel = panelGemmEnabled();
        setPanelGemmEnabled(true);
        const auto blocked_out = packed.runFold(input, weights, &scratch);
        setPanelGemmEnabled(false);
        const auto unblocked_out =
            packed.runFold(input, weights, &scratch);
        fatalIf(!(blocked_out.output == unblocked_out.output) ||
                    blocked_out.cycles != unblocked_out.cycles,
                "panel blocked/unblocked mismatch");

        setPanelGemmEnabled(false);
        const double unblocked_us = medianUsPerFold(
            [&] { packed.runFold(input, weights, &scratch); }, 3, 3);
        setPanelGemmEnabled(true);
        const double blocked_us = medianUsPerFold(
            [&] { packed.runFold(input, weights, &scratch); }, 3, 3);
        setPanelGemmEnabled(was_panel);
        panel_speedup = unblocked_us / blocked_us;

        reg.counter("panel.budget_kb", "panel arena budget (KiB)")
            .set(u64(panelBudgetKb()));
        reg.scalar("panel.gemm.unblocked_us",
                   "64x64 8-bit UR fold, legacy per-MAC stream queries")
            .set(unblocked_us);
        reg.scalar("panel.gemm.blocked_us",
                   "64x64 8-bit UR fold, cache-blocked panel path")
            .set(blocked_us);
        reg.scalar("panel.gemm.speedup_x",
                   "unblocked/blocked fold-time ratio")
            .set(panel_speedup);
        std::printf("\npanel gemm (%dx%d ur%d): unblocked %.2f us, "
                    "blocked %.2f us, %.1fx (budget %u KiB)\n",
                    pdim, pdim, bits, unblocked_us, blocked_us,
                    panel_speedup, panelBudgetKb());
    }

    // ---- Sparsity: dense vs zero-skipping packed folds ----------------
    // Activation sparsity is what the plans compact (weights stay
    // dense, mirroring ReLU-fed layers). Outputs must be bit-identical
    // before either number is recorded — zero skipping is an exactness-
    // preserving optimization, never an approximation.
    double sparse_speedup_90 = 1.0;
    double dense90_us = 0.0;
    {
        ScopedTimer timer("perf_smoke_sparsity", "bench");
        USYS_PROF_SCOPE("perf.sparsity");
        // Tall fold (256 input rows on a 64x64 tile): the MAC loop the
        // plans compact dominates the activation-independent weight
        // staging, as in real im2col layers where M >> R.
        const int sdim = 64;
        const int srows = 256;
        Prng prng(57);
        const auto weights = randomCodes(sdim, sdim, prng);
        ArrayConfig scfg;
        scfg.rows = sdim;
        scfg.cols = sdim;
        scfg.kernel = {Scheme::USystolicRate, bits, 0};
        const PackedArray packed(scfg);
        FoldStatsDelta scratch;
        const bool was_sparse = sparseEnabled();
        const bool was_zskip = zeroSkipEnabled();

        const struct
        {
            const char *tag;
            u64 pct;
        } levels[] = {{"s0", 0}, {"s50", 50}, {"s90", 90}};

        // The dense leg disables BOTH zero-exploitation gates — the
        // per-stream ones==0 skip and the plan compaction — so the
        // ratio prices the whole sparsity subsystem, not just the plan
        // layered over the legacy skip.
        const auto setDense = [](bool dense) {
            setSparseEnabled(!dense);
            setZeroSkipEnabled(!dense);
        };

        std::printf("\n%-16s %14s %14s %10s\n", "sparsity",
                    "dense us/fold", "sparse us/fold", "speedup");
        for (const auto &lv : levels) {
            auto input = randomCodes(srows, sdim, prng);
            for (int r = 0; r < srows; ++r)
                for (int c = 0; c < sdim; ++c)
                    if (prng.below(100) < lv.pct)
                        input(r, c) = 0;

            setDense(false);
            const auto sparse_out =
                packed.runFold(input, weights, &scratch);
            setDense(true);
            const auto dense_out =
                packed.runFold(input, weights, &scratch);
            fatalIf(!(sparse_out.output == dense_out.output) ||
                        sparse_out.cycles != dense_out.cycles,
                    std::string("sparse/dense mismatch at ") + lv.tag);

            // Interleaved min-of-chunks (see the profiler guard): both
            // variants sample every point of the turbo decay.
            double dense_us = 1e300, sparse_us = 1e300;
            for (int t = 0; t < 7; ++t) {
                setDense(true);
                dense_us = std::min(
                    dense_us,
                    chunkUs(
                        [&] { packed.runFold(input, weights, &scratch); },
                        3));
                setDense(false);
                sparse_us = std::min(
                    sparse_us,
                    chunkUs(
                        [&] { packed.runFold(input, weights, &scratch); },
                        3));
            }
            const double speedup = dense_us / sparse_us;
            if (std::strcmp(lv.tag, "s90") == 0) {
                sparse_speedup_90 = speedup;
                dense90_us = dense_us;
            }
            const std::string slug = std::string("sparsity.") + lv.tag;
            reg.scalar(slug + ".dense_us",
                       "256x64x64 8-bit UR fold, zero exploitation off")
                .set(dense_us);
            reg.scalar(slug + ".sparse_us",
                       "256x64x64 8-bit UR fold, zero skipping enabled")
                .set(sparse_us);
            reg.scalar(slug + ".speedup_x",
                       "dense/sparse fold-time ratio")
                .set(speedup);
            std::printf("%-16s %14.2f %14.2f %9.1fx\n", lv.tag, dense_us,
                        sparse_us, speedup);
        }
        setSparseEnabled(was_sparse);
        setZeroSkipEnabled(was_zskip);
    }

    finalizeBench(opts);

    if (min_sparse_speedup > 0.0) {
        // A starved/overloaded host can squeeze the 64x64 fold below
        // reliable timer resolution; the gate self-skips there the way
        // the SIMD gates skip on generic-only hosts.
        if (dense90_us < 5.0) {
            std::printf("perf_smoke: sparse speedup gate skipped — "
                        "dense fold too fast to time reliably "
                        "(%.2f us)\n",
                        dense90_us);
        } else if (sparse_speedup_90 < min_sparse_speedup) {
            std::fprintf(stderr,
                         "perf_smoke: 90%% sparse speedup %.1fx below "
                         "required %.1fx\n",
                         sparse_speedup_90, min_sparse_speedup);
            return 1;
        }
    }

    if (min_simd_speedup > 0.0) {
        if (!have_simd) {
            std::printf("perf_smoke: SIMD speedup gate skipped — no "
                        "vector tier available on this host/build\n");
        } else if (popcount_speedup < min_simd_speedup) {
            std::fprintf(stderr,
                         "perf_smoke: SIMD popcount speedup %.1fx below "
                         "required %.1fx\n",
                         popcount_speedup, min_simd_speedup);
            return 1;
        }
    }

    if (min_gemm_row_speedup > 0.0) {
        if (!have_simd) {
            std::printf("perf_smoke: GEMM-row speedup gate skipped — no "
                        "vector tier available on this host/build\n");
        } else if (gemm_row_speedup < min_gemm_row_speedup) {
            std::fprintf(stderr,
                         "perf_smoke: SIMD gemm_row_i32 speedup %.1fx "
                         "below required %.1fx\n",
                         gemm_row_speedup, min_gemm_row_speedup);
            return 1;
        }
    }

    if (min_panel_speedup > 0.0 && panel_speedup < min_panel_speedup) {
        std::fprintf(stderr,
                     "perf_smoke: panel GEMM speedup %.1fx below "
                     "required %.1fx\n",
                     panel_speedup, min_panel_speedup);
        return 1;
    }

    if (min_speedup > 0.0 && ur_speedup < min_speedup) {
        std::fprintf(stderr,
                     "perf_smoke: UR speedup %.1fx below required %.1fx\n",
                     ur_speedup, min_speedup);
        return 1;
    }

    if (max_profile_overhead_pct > 0.0 &&
        profile_off_delta_pct > max_profile_overhead_pct) {
        std::fprintf(stderr,
                     "perf_smoke: profiling-disabled A/A delta %.2f%% "
                     "exceeds %.2f%%\n",
                     profile_off_delta_pct, max_profile_overhead_pct);
        return 1;
    }
    return 0;
}
