/**
 * @file
 * Scalar-vs-packed kernel microbenchmark with a machine-readable
 * artifact (BENCH_kernels.json by default).
 *
 * Times SystolicArray::runFold (the scalar reference engine) against
 * PackedArray::runFold on one 8-bit 16x16 weight-stationary tile per
 * scheme, asserts the outputs agree, records per-fold latencies and
 * speedups in the stats registry under kernel.<tag>.*, and writes the
 * standard stats artifact (schema: tools/bench_kernels_schema.json).
 *
 * With --min-speedup X the binary exits nonzero if the full-period UR
 * speedup falls short — the hook the perf ctest uses to enforce the
 * packed engine's >= 10x floor. Timings use the median of several
 * trials so a loaded CI host doesn't flake the check.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/event_trace.h"
#include "common/logging.h"
#include "common/prng.h"
#include "common/stats_registry.h"
#include "arch/packed_array.h"

namespace usys {
namespace {

Matrix<i32>
randomCodes(int rows, int cols, Prng &prng)
{
    Matrix<i32> m(rows, cols);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            m(r, c) = i32(prng.below(255)) - 127;
    return m;
}

/** Median per-fold wall time in microseconds over `trials` timed runs. */
template <typename Fn>
double
medianUsPerFold(Fn &&fold, int reps, int trials)
{
    std::vector<double> samples;
    fold(); // warm caches before timing
    for (int t = 0; t < trials; ++t) {
        const auto start = std::chrono::steady_clock::now();
        for (int r = 0; r < reps; ++r)
            fold();
        const auto stop = std::chrono::steady_clock::now();
        const double us =
            std::chrono::duration<double, std::micro>(stop - start)
                .count();
        samples.push_back(us / double(reps));
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

struct KernelPoint
{
    const char *tag; // stat slug under kernel.<tag>.*
    KernelConfig kern;
    int scalar_reps;
};

} // namespace
} // namespace usys

int
main(int argc, char **argv)
{
    using namespace usys;

    BenchOptions opts = parseBenchArgs(&argc, argv, "perf_smoke");
    if (opts.stats_json.empty())
        opts.stats_json = "BENCH_kernels.json";

    double min_speedup = 0.0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--min-speedup") == 0) {
            fatalIf(i + 1 >= argc, "--min-speedup requires a value");
            min_speedup = parseDoubleFlag("--min-speedup", argv[++i],
                                          0.0, 1e6);
        } else {
            fatal(std::string("perf_smoke: unknown argument: ") + argv[i]);
        }
    }

    const int bits = 8;
    const int dim = 16; // 16x16 tile, 16 input rows
    ArrayConfig cfg;
    cfg.rows = dim;
    cfg.cols = dim;

    // Full-period UR is the headline kernel (the acceptance floor);
    // the rest give every unary scheme a perf trajectory.
    const KernelPoint points[] = {
        {"ur", {Scheme::USystolicRate, bits, 0}, 5},
        {"ur_ebt6", {Scheme::USystolicRate, bits, 6}, 10},
        {"ut", {Scheme::USystolicTemporal, bits, 0}, 5},
        {"ug", {Scheme::UgemmHybrid, bits, 0}, 3},
        {"bs", {Scheme::BinarySerial, bits, 0}, 20},
    };

    StatsRegistry &reg = statsRegistry();
    reg.counter("kernel.tile.rows", "benchmark tile rows").set(u64(dim));
    reg.counter("kernel.tile.cols", "benchmark tile cols").set(u64(dim));
    reg.counter("kernel.tile.m", "input rows per fold").set(u64(dim));
    reg.counter("kernel.tile.bits", "data bitwidth").set(u64(bits));

    double ur_speedup = 0.0;
    {
        ScopedTimer timer("perf_smoke", "bench");
        Prng prng(17);
        const auto input = randomCodes(dim, dim, prng);
        const auto weights = randomCodes(dim, dim, prng);

        std::printf("%-10s %14s %14s %10s\n", "kernel", "scalar us/fold",
                    "packed us/fold", "speedup");
        for (const auto &p : points) {
            cfg.kernel = p.kern;
            const SystolicArray scalar(cfg);
            const PackedArray packed(cfg);

            // Equivalence sanity: a perf number for a wrong kernel is
            // worse than no number.
            FoldStatsDelta scratch;
            const auto ref = scalar.runFold(input, weights, &scratch);
            const auto got = packed.runFold(input, weights, &scratch);
            fatalIf(!(ref.output == got.output) || ref.cycles != got.cycles,
                    std::string("packed/scalar mismatch for ") +
                        p.kern.name());

            const double scalar_us = medianUsPerFold(
                [&] { scalar.runFold(input, weights, &scratch); },
                p.scalar_reps, 3);
            const double packed_us = medianUsPerFold(
                [&] { packed.runFold(input, weights, &scratch); },
                p.scalar_reps * 20, 3);
            const double speedup = scalar_us / packed_us;
            if (std::strcmp(p.tag, "ur") == 0)
                ur_speedup = speedup;

            const std::string slug = std::string("kernel.") + p.tag;
            reg.scalar(slug + ".scalar_us", "scalar reference us per fold")
                .set(scalar_us);
            reg.scalar(slug + ".packed_us", "packed engine us per fold")
                .set(packed_us);
            reg.scalar(slug + ".speedup_x", "scalar/packed fold-time ratio")
                .set(speedup);
            std::printf("%-10s %14.2f %14.2f %9.1fx\n", p.kern.name().c_str(),
                        scalar_us, packed_us, speedup);
        }
    }

    finalizeBench(opts);

    if (min_speedup > 0.0 && ur_speedup < min_speedup) {
        std::fprintf(stderr,
                     "perf_smoke: UR speedup %.1fx below required %.1fx\n",
                     ur_speedup, min_speedup);
        return 1;
    }
    return 0;
}
