/**
 * @file
 * google-benchmark microbenchmarks of the library's hot kernels: Sobol
 * generation, cycle-level uMUL stepping, the O(1) product tables, the
 * functional GEMM engines, and the bit-level systolic array.
 */

#include <benchmark/benchmark.h>

#include "common/cli.h"
#include "common/event_trace.h"
#include "common/matrix.h"
#include "common/prng.h"
#include "arch/array.h"
#include "arch/rtl_array.h"
#include "mem/dram_timing.h"
#include "arch/functional.h"
#include "unary/bitstream.h"
#include "unary/product_table.h"
#include "unary/sobol.h"
#include "unary/umul.h"

namespace usys {
namespace {

void
BM_SobolNext(benchmark::State &state)
{
    SobolSequence seq(1, int(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(seq.next());
}
BENCHMARK(BM_SobolNext)->Arg(7)->Arg(11);

void
BM_CbsgUmulFullPeriod(benchmark::State &state)
{
    const int mag_bits = int(state.range(0));
    const u32 period = u32(1) << mag_bits;
    for (auto _ : state) {
        RateBsg input(period / 3, 1, mag_bits);
        CbsgUmul mul(period / 2, mag_bits, 0);
        u32 ones = 0;
        for (u32 t = 0; t < period; ++t)
            ones += mul.step(input.nextBit());
        benchmark::DoNotOptimize(ones);
    }
    state.SetItemsProcessed(state.iterations() * period);
}
BENCHMARK(BM_CbsgUmulFullPeriod)->Arg(7)->Arg(9);

void
BM_ProductTableMac(benchmark::State &state)
{
    const UnaryProductModel &model = unaryModelFor(8);
    Prng prng(1);
    u32 i = 0;
    for (auto _ : state) {
        i = (i + 37) & 127;
        benchmark::DoNotOptimize(model.fullProduct(i, (i * 11) & 127));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProductTableMac);

Matrix<i32>
randomCodes(int rows, int cols, Prng &prng)
{
    Matrix<i32> m(rows, cols);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            m(r, c) = i32(prng.below(255)) - 127;
    return m;
}

void
BM_FunctionalGemm(benchmark::State &state)
{
    const Scheme scheme = Scheme(state.range(0));
    GemmExecutor exec({scheme, 8, 0});
    Prng prng(2);
    auto a = randomCodes(32, 64, prng);
    auto b = randomCodes(64, 32, prng);
    for (auto _ : state)
        benchmark::DoNotOptimize(exec.run(a, b));
    state.SetItemsProcessed(state.iterations() * 32 * 64 * 32);
}
BENCHMARK(BM_FunctionalGemm)
    ->Arg(int(Scheme::BinaryParallel))
    ->Arg(int(Scheme::USystolicRate))
    ->Arg(int(Scheme::UgemmHybrid));

void
BM_CycleLevelArrayFold(benchmark::State &state)
{
    ArrayConfig cfg;
    cfg.rows = 8;
    cfg.cols = 8;
    cfg.kernel = {Scheme(state.range(0)), 8, 0};
    SystolicArray array(cfg);
    Prng prng(3);
    auto input = randomCodes(16, 8, prng);
    auto weights = randomCodes(8, 8, prng);
    for (auto _ : state)
        benchmark::DoNotOptimize(array.runFold(input, weights));
}
BENCHMARK(BM_CycleLevelArrayFold)
    ->Arg(int(Scheme::BinaryParallel))
    ->Arg(int(Scheme::USystolicRate));

void
BM_RtlArrayFold(benchmark::State &state)
{
    ArrayConfig cfg;
    cfg.rows = 8;
    cfg.cols = 8;
    cfg.kernel = {Scheme::USystolicRate, 8, 6};
    RtlArray array(cfg);
    Prng prng(4);
    auto input = randomCodes(8, 8, prng);
    auto weights = randomCodes(8, 8, prng);
    for (auto _ : state)
        benchmark::DoNotOptimize(array.runFold(input, weights));
}
BENCHMARK(BM_RtlArrayFold);

void
BM_DramDeviceStream(benchmark::State &state)
{
    DramDevice dram(ddr3Chip(), 0.4);
    for (auto _ : state) {
        dram.reset();
        Cycles t = 0;
        for (u64 addr = 0; addr < (u64(1) << 16); addr += 64)
            t = dram.access(addr, 64, t);
        benchmark::DoNotOptimize(t);
    }
    state.SetBytesProcessed(state.iterations() * (u64(1) << 16));
}
BENCHMARK(BM_DramDeviceStream);

} // namespace
} // namespace usys

int
main(int argc, char **argv)
{
    // Strip the shared observability flags before google-benchmark's own
    // argument parser sees the command line.
    const usys::BenchOptions opts =
        usys::parseBenchArgs(&argc, argv, "micro_kernels");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    {
        usys::ScopedTimer timer("micro_kernels", "bench");
        benchmark::RunSpecifiedBenchmarks();
    }
    benchmark::Shutdown();
    usys::finalizeBench(opts);
    return 0;
}
