/**
 * @file
 * google-benchmark microbenchmarks of the library's hot kernels: Sobol
 * generation, cycle-level uMUL stepping, the O(1) product tables, the
 * functional GEMM engines, and the bit-level systolic array.
 */

#include <benchmark/benchmark.h>

#include "common/cli.h"
#include "common/event_trace.h"
#include "common/matrix.h"
#include "common/prng.h"
#include "common/simd.h"
#include "arch/array.h"
#include "arch/rtl_array.h"
#include "mem/dram_timing.h"
#include "arch/functional.h"
#include "unary/bitstream.h"
#include "unary/product_table.h"
#include "unary/sobol.h"
#include "unary/umul.h"

namespace usys {
namespace {

void
BM_SobolNext(benchmark::State &state)
{
    SobolSequence seq(1, int(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(seq.next());
}
BENCHMARK(BM_SobolNext)->Arg(7)->Arg(11);

void
BM_CbsgUmulFullPeriod(benchmark::State &state)
{
    const int mag_bits = int(state.range(0));
    const u32 period = u32(1) << mag_bits;
    for (auto _ : state) {
        RateBsg input(period / 3, 1, mag_bits);
        CbsgUmul mul(period / 2, mag_bits, 0);
        u32 ones = 0;
        for (u32 t = 0; t < period; ++t)
            ones += mul.step(input.nextBit());
        benchmark::DoNotOptimize(ones);
    }
    state.SetItemsProcessed(state.iterations() * period);
}
BENCHMARK(BM_CbsgUmulFullPeriod)->Arg(7)->Arg(9);

void
BM_ProductTableMac(benchmark::State &state)
{
    const UnaryProductModel &model = unaryModelFor(8);
    Prng prng(1);
    u32 i = 0;
    for (auto _ : state) {
        i = (i + 37) & 127;
        benchmark::DoNotOptimize(model.fullProduct(i, (i * 11) & 127));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProductTableMac);

Matrix<i32>
randomCodes(int rows, int cols, Prng &prng)
{
    Matrix<i32> m(rows, cols);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            m(r, c) = i32(prng.below(255)) - 127;
    return m;
}

void
BM_FunctionalGemm(benchmark::State &state)
{
    const Scheme scheme = Scheme(state.range(0));
    GemmExecutor exec({scheme, 8, 0});
    Prng prng(2);
    auto a = randomCodes(32, 64, prng);
    auto b = randomCodes(64, 32, prng);
    for (auto _ : state)
        benchmark::DoNotOptimize(exec.run(a, b));
    state.SetItemsProcessed(state.iterations() * 32 * 64 * 32);
}
BENCHMARK(BM_FunctionalGemm)
    ->Arg(int(Scheme::BinaryParallel))
    ->Arg(int(Scheme::USystolicRate))
    ->Arg(int(Scheme::UgemmHybrid));

void
BM_CycleLevelArrayFold(benchmark::State &state)
{
    ArrayConfig cfg;
    cfg.rows = 8;
    cfg.cols = 8;
    cfg.kernel = {Scheme(state.range(0)), 8, 0};
    SystolicArray array(cfg);
    Prng prng(3);
    auto input = randomCodes(16, 8, prng);
    auto weights = randomCodes(8, 8, prng);
    for (auto _ : state)
        benchmark::DoNotOptimize(array.runFold(input, weights));
}
BENCHMARK(BM_CycleLevelArrayFold)
    ->Arg(int(Scheme::BinaryParallel))
    ->Arg(int(Scheme::USystolicRate));

void
BM_RtlArrayFold(benchmark::State &state)
{
    ArrayConfig cfg;
    cfg.rows = 8;
    cfg.cols = 8;
    cfg.kernel = {Scheme::USystolicRate, 8, 6};
    RtlArray array(cfg);
    Prng prng(4);
    auto input = randomCodes(8, 8, prng);
    auto weights = randomCodes(8, 8, prng);
    for (auto _ : state)
        benchmark::DoNotOptimize(array.runFold(input, weights));
}
BENCHMARK(BM_RtlArrayFold);

// SIMD kernel tiers: Arg(0) = generic, Arg(1) = avx2, Arg(2) = avx512
// (tiers absent on this host/build skip with an error).
const SimdKernels *
tierForArg(benchmark::State &state)
{
    if (state.range(0) == 0)
        return &genericKernels();
    if (state.range(0) == 2) {
        const SimdKernels *avx512 = avx512Kernels();
        if (!avx512)
            state.SkipWithError("AVX-512 unavailable on this host/build");
        return avx512;
    }
    const SimdKernels *avx2 = avx2Kernels();
    if (!avx2)
        state.SkipWithError("AVX2 unavailable on this host/build");
    return avx2;
}

void
BM_SimdPopcountWords(benchmark::State &state)
{
    const SimdKernels *k = tierForArg(state);
    if (!k)
        return;
    Prng prng(5);
    std::vector<u64> words(std::size_t(1) << 14);
    for (auto &w : words)
        w = prng.next();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            k->popcountWords(words.data(), words.size()));
    state.SetBytesProcessed(state.iterations() * words.size() * 8);
}
BENCHMARK(BM_SimdPopcountWords)->Arg(0)->Arg(1)->Arg(2);

void
BM_SimdThresholdPack(benchmark::State &state)
{
    const SimdKernels *k = tierForArg(state);
    if (!k)
        return;
    Prng prng(6);
    const u32 n = u32(1) << 15;
    std::vector<u32> vals(n);
    for (auto &v : vals)
        v = u32(prng.below(257));
    std::vector<u64> out(n / 64);
    for (auto _ : state) {
        k->thresholdPackWords(vals.data(), n, 128, out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimdThresholdPack)->Arg(0)->Arg(1)->Arg(2);

void
BM_SimdPrefixPopcount(benchmark::State &state)
{
    const SimdKernels *k = tierForArg(state);
    if (!k)
        return;
    Prng prng(7);
    const u32 nwords = u32(1) << 14;
    std::vector<u64> words(nwords);
    for (auto &w : words)
        w = prng.next();
    std::vector<u32> prefix(nwords + 1);
    for (auto _ : state) {
        k->prefixPopcount(words.data(), nwords, prefix.data());
        benchmark::DoNotOptimize(prefix.data());
    }
    state.SetBytesProcessed(state.iterations() * nwords * 8);
}
BENCHMARK(BM_SimdPrefixPopcount)->Arg(0)->Arg(1)->Arg(2);

void
BM_SimdAxpyF32(benchmark::State &state)
{
    const SimdKernels *k = tierForArg(state);
    if (!k)
        return;
    Prng prng(8);
    const int n = 4096;
    std::vector<float> c(n), b(n);
    for (int j = 0; j < n; ++j) {
        c[j] = float(prng.uniform(-1.0, 1.0));
        b[j] = float(prng.uniform(-1.0, 1.0));
    }
    for (auto _ : state) {
        k->axpyF32(c.data(), b.data(), 1e-6f, n);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimdAxpyF32)->Arg(0)->Arg(1)->Arg(2);

void
BM_SimdGemmRowI32(benchmark::State &state)
{
    const SimdKernels *k = tierForArg(state);
    if (!k)
        return;
    Prng prng(9);
    const int n = 4096;
    std::vector<i64> c(n, 0);
    std::vector<i32> b(n);
    for (auto &v : b)
        v = i32(prng.next());
    for (auto _ : state) {
        k->gemmRowI32(c.data(), b.data(), 7, n);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimdGemmRowI32)->Arg(0)->Arg(1)->Arg(2);

void
BM_DramDeviceStream(benchmark::State &state)
{
    DramDevice dram(ddr3Chip(), 0.4);
    for (auto _ : state) {
        dram.reset();
        Cycles t = 0;
        for (u64 addr = 0; addr < (u64(1) << 16); addr += 64)
            t = dram.access(addr, 64, t);
        benchmark::DoNotOptimize(t);
    }
    state.SetBytesProcessed(state.iterations() * (u64(1) << 16));
}
BENCHMARK(BM_DramDeviceStream);

} // namespace
} // namespace usys

int
main(int argc, char **argv)
{
    // Strip the shared observability flags before google-benchmark's own
    // argument parser sees the command line.
    const usys::BenchOptions opts =
        usys::parseBenchArgs(&argc, argv, "micro_kernels");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    {
        usys::ScopedTimer timer("micro_kernels", "bench");
        benchmark::RunSpecifiedBenchmarks();
    }
    benchmark::Shutdown();
    usys::finalizeBench(opts);
    return 0;
}
