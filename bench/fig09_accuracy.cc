/**
 * @file
 * Regenerates Figure 9: top-1 accuracy of three CNN tiers under FP32,
 * FXP-i-res, FXP-o-res, and uSystolic at EBT 6-12.
 *
 * Paper shape to reproduce: FP32 highest and FXP-i-res second everywhere;
 * uSystolic between FXP-o-res and FXP-i-res with smooth accuracy-vs-EBT
 * scaling; rate and temporal coding essentially identical at equal EBT;
 * uGEMM-H identical to uSystolic (resolution unchanged).
 *
 * Models are trained in FP32 on first run and cached on disk, so
 * reruns only evaluate. Cache location precedence: --cache-dir flag,
 * then the USYS_CACHE_DIR env, then the build-tree default baked in at
 * configure time (USYS_FIG9_CACHE_DEFAULT) — so a default run never
 * litters the source tree or the invoking directory.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string>

#include "common/cli.h"
#include "common/logging.h"
#include "common/event_trace.h"
#include "common/profiler.h"
#include "common/table.h"
#include "eval/error_stats.h"
#include "dnn/data.h"
#include "dnn/models.h"
#include "dnn/train.h"

using namespace usys;

namespace {

std::string g_cache_dir; // --cache-dir override (highest precedence)

std::string
cacheDir()
{
    if (!g_cache_dir.empty())
        return g_cache_dir;
    if (const char *env = std::getenv("USYS_CACHE_DIR"))
        return env;
#ifdef USYS_FIG9_CACHE_DEFAULT
    return USYS_FIG9_CACHE_DEFAULT;
#else
    return "usys_fig9_cache";
#endif
}

struct Tier
{
    const char *figure;
    const char *name;
    std::function<Dataset(std::size_t, u64)> make_data;
    std::function<std::unique_ptr<Sequential>(int, u64)> build;
    std::size_t train_count;
    TrainOpts opts;
};

void
runTier(const Tier &tier)
{
    USYS_PROF_SCOPE("fig09.tier");
    std::printf("\n=== Figure %s: %s ===\n", tier.figure, tier.name);

    Dataset train = tier.make_data(tier.train_count, 42);
    Dataset test = tier.make_data(400, 43);
    auto model = tier.build(train.classes, 7);

    const std::string cache =
        cacheDir() + "/" + std::string(tier.figure) + ".weights";
    std::filesystem::create_directories(cacheDir());
    {
        USYS_PROF_SCOPE("fig09.weight_cache");
        if (!loadWeights(*model, cache)) {
            trainClassifier(*model, train, tier.opts);
            saveWeights(*model, cache);
        }
    }

    const double fp32 =
        evaluateAccuracy(*model, test, {NumericMode::Fp32, 8});

    TablePrinter table({"EBT-cycles", "FXP-o-res %", "uSystolic %",
                        "FXP-i-res %", "FP32 %"});
    for (int ebt = 6; ebt <= 12; ++ebt) {
        const double o_res = evaluateAccuracy(
            *model, test, {NumericMode::FxpOres, ebt});
        const double unary = evaluateAccuracy(
            *model, test, {NumericMode::UnaryRate, ebt});
        const double i_res = evaluateAccuracy(
            *model, test, {NumericMode::FxpIres, ebt});
        char label[32];
        std::snprintf(label, sizeof(label), "%d-%d", ebt, 1 << (ebt - 1));
        table.addRow({label, TablePrinter::num(100 * o_res, 1),
                      TablePrinter::num(100 * unary, 1),
                      TablePrinter::num(100 * i_res, 1),
                      TablePrinter::num(100 * fp32, 1)});
    }
    table.print();

    // Section V-A cross-checks at one representative EBT.
    const double rate8 =
        evaluateAccuracy(*model, test, {NumericMode::UnaryRate, 8});
    const double temp8 =
        evaluateAccuracy(*model, test, {NumericMode::UnaryTemporal, 8});
    const double ugemm8 =
        evaluateAccuracy(*model, test, {NumericMode::UgemmH, 8});
    std::printf("EBT 8 cross-check: rate %.1f%% vs temporal %.1f%% "
                "(paper: almost identical); uGEMM-H %.1f%% (paper: same "
                "as uSystolic)\n",
                100 * rate8, 100 * temp8, 100 * ugemm8);
}

} // namespace

void
printGemmErrorStats()
{
    // Section V-A backing data: GEMM error mean/std ordering
    // FXP-o-res > uSystolic > FXP-i-res at matched EBT.
    std::printf("\n=== GEMM error statistics (Section V-A ordering) "
                "===\n");
    for (int ebt : {6, 8}) {
        std::printf("EBT %d (K = 96):\n", ebt);
        TablePrinter table({"scheme", "mean |err|", "std err", "NRMSE"});
        for (const auto &row : gemmErrorStats(ebt, 96)) {
            table.addRow({row.scheme,
                          TablePrinter::num(row.mean_abs_error, 4),
                          TablePrinter::num(row.std_error, 4),
                          TablePrinter::num(row.nrmse, 4)});
        }
        table.print();
    }
}

int
main(int argc, char **argv)
{
    const BenchOptions opts =
        parseBenchArgs(&argc, argv, "fig09_accuracy");
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--cache-dir") == 0) {
            fatalIf(i + 1 >= argc, "--cache-dir requires a path");
            g_cache_dir = argv[++i];
        } else {
            fatal(std::string("fig09_accuracy: unknown argument: ") +
                  argv[i]);
        }
    }
    Tier tiers[] = {
        {"9a", "digit glyphs, 4-layer CNN (MNIST tier)",
         [](std::size_t n, u64 s) { return makeDigits(n, s); },
         buildCnn4, 2000, TrainOpts{8, 32, 0.05f, 0.9f, 1, false}},
        {"9b", "oriented gratings, ResLite (CIFAR10/ResNet18 tier)",
         [](std::size_t n, u64 s) { return makeGratings(n, s); },
         buildResLite, 2000, TrainOpts{8, 32, 0.03f, 0.9f, 1, false}},
        {"9c", "hard composite glyphs, AlexLite (ImageNet/AlexNet tier)",
         [](std::size_t n, u64 s) { return makeHardGlyphs(n, s); },
         buildAlexLite, 2400, TrainOpts{14, 32, 0.02f, 0.9f, 1, false}},
    };
    for (const auto &tier : tiers) {
        ScopedTimer timer(std::string("tier ") + tier.figure, "bench");
        runTier(tier);
    }
    printGemmErrorStats();
    finalizeBench(opts);
    return 0;
}
