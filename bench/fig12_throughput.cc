/**
 * @file
 * Regenerates Figure 12: layerwise throughput (GEMM executions per
 * second) of 8-bit AlexNet for every computing scheme.
 *
 * Paper shape to reproduce: on the edge, throughput degrades almost
 * linearly with the MAC cycle count (low contention); on the cloud,
 * binary parallel loses a large share of its nominal advantage to memory
 * contention, narrowing the gap (Section V-D).
 */

#include <cstdio>

#include "common/cli.h"
#include "common/event_trace.h"
#include "common/table.h"
#include "eval/experiments.h"

using namespace usys;

namespace {

void
printConfig(bool edge)
{
    std::printf("\n=== Figure 12%s: %s, 8-bit AlexNet ===\n",
                edge ? "a" : "b", edge ? "edge (12x14)" : "cloud (256x256)");
    const auto rows = sweepAlexnet(edge, paperCandidates(8));
    TablePrinter table({"layer", "design", "GEMM/s", "GMAC/s",
                        "runtime ms", "overhead %"});
    for (const auto &row : rows) {
        table.addRow({row.layer, row.candidate,
                      TablePrinter::num(row.stats.gemm_per_s, 2),
                      TablePrinter::num(row.stats.throughput_gmacs, 2),
                      TablePrinter::num(row.stats.runtime_s * 1e3, 3),
                      TablePrinter::num(row.stats.overhead_pct, 1)});
    }
    table.print();

    // Average Conv-layer contention overheads (Section V-D).
    std::printf("avg Conv overhead:");
    for (const auto &cand : paperCandidates(8)) {
        double sum = 0;
        int n = 0;
        for (const auto &row : rows) {
            if (row.candidate == cand.label &&
                row.layer.rfind("Conv", 0) == 0) {
                sum += row.stats.overhead_pct;
                ++n;
            }
        }
        std::printf(" %s %.1f%%", cand.label.c_str(), sum / n);
    }
    std::printf("\n(paper cloud: BP 161.8, BS 105.2, U32 47.5, U64 25.7, "
                "U128 13.4, UG 6.9 %%)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts =
        parseBenchArgs(&argc, argv, "fig12_throughput");
    {
        ScopedTimer timer("fig12 edge", "bench");
        printConfig(true);
    }
    {
        ScopedTimer timer("fig12 cloud", "bench");
        printConfig(false);
    }
    finalizeBench(opts);
    return 0;
}
