/**
 * @file
 * Fault-resilience sweep: accuracy degradation of the five computing
 * schemes under escalating fault-injection rates.
 *
 * For each scheme (BP/BS/UR/UT/UG, 8-bit) and each rate point the
 * bench runs a resilience shard (see eval/resilience.h): `--trials`
 * random GEMMs through SystolicGemm, fault-free vs faulted, and books
 * the NRMSE of the faulted outputs into the stats registry. The
 * expected picture is the paper's resilience argument made
 * quantitative: the unary schemes degrade gracefully (a corrupted
 * stream bit is worth 1/2^(N-1) of a product) while binary-parallel
 * collapses (an MSB flip is worth half the range); `--check-resilience
 * EPS` turns that into an exit-code gate.
 *
 * The sweep checkpoints each completed shard (`--checkpoint PATH`,
 * atomic rename-on-write) and `--resume` restores completed shards and
 * recomputes only the rest — the merged BENCH_fault.json is
 * byte-identical to an uninterrupted run, which the bench_fault ctest
 * enforces by SIGKILLing a run mid-sweep (`--die-after N`) and
 * resuming it. To keep that guarantee the artifact contains no
 * wall-clock values, and shard arch deltas never reach the registry.
 *
 * Schema: tools/bench_fault_schema.json.
 */

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/checkpoint.h"
#include "common/cli.h"
#include "common/logging.h"
#include "common/stats_registry.h"
#include "eval/resilience.h"

namespace usys {
namespace {

struct SweepScheme
{
    const char *tag; // registry slug (lowercase schemeTag)
    Scheme scheme;
};

constexpr SweepScheme kSchemes[] = {
    {"bp", Scheme::BinaryParallel},
    {"bs", Scheme::BinarySerial},
    {"ur", Scheme::USystolicRate},
    {"ut", Scheme::USystolicTemporal},
    {"ug", Scheme::UgemmHybrid},
};

// Escalating per-site rates. The floor of 1e-2 keeps the lowest
// nonzero point statistically meaningful for BP: its only stream site
// (the activation code) has ~1.5k instances per trial here, so 1e-3
// would leave the gate hostage to a handful of hash realizations.
constexpr double kRates[] = {0.0, 1e-2, 3e-2, 1e-1};
constexpr int kNumRates = int(sizeof(kRates) / sizeof(kRates[0]));

FaultRates
ratesForSite(const std::string &site, double rate)
{
    FaultRates r;
    if (site == "stream") {
        // Stream-only sites: the bits actually traveling the unary
        // datapath (input BSG output + C-BSG comparisons).
        r.activation_stream = rate;
        r.weight_stream = rate;
    } else if (site == "all") {
        r.weight_reg = rate;
        r.activation_stream = rate;
        r.weight_stream = rate;
        r.accumulator = rate;
        r.dram_word = rate;
    } else {
        fatal("--fault-site must be 'stream' or 'all', got '" + site +
              "'");
    }
    return r;
}

} // namespace
} // namespace usys

int
main(int argc, char **argv)
{
    using namespace usys;

    BenchOptions opts = parseBenchArgs(&argc, argv, "fault_sweep");

    std::string out_path = "BENCH_fault.json";
    std::string checkpoint_path;
    // The stream sites are the default: they carry the paper's
    // resilience claim (a corrupted unary stream bit is worth
    // 1/2^(N-1) of a product; a binary code bit up to half the range).
    // --fault-site all adds weight registers, accumulators, and DRAM
    // words — where a high-bit flip is catastrophic for *every*
    // scheme, and relatively worse in unary count units.
    std::string site = "stream";
    bool resume = false;
    i64 trials = 3;
    i64 die_after = 0;
    u64 fault_seed = 0x5EEDu;
    i64 burst = 4;
    FaultKind kind = FaultKind::BitFlip;
    double check_eps = 0.0;

    for (int i = 1; i < argc; ++i) {
        auto value = [&](const char *flag) -> const char * {
            fatalIf(i + 1 >= argc,
                    std::string(flag) + " requires a value");
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--out") == 0) {
            out_path = value("--out");
        } else if (std::strcmp(argv[i], "--checkpoint") == 0) {
            checkpoint_path = value("--checkpoint");
        } else if (std::strcmp(argv[i], "--resume") == 0) {
            resume = true;
        } else if (std::strcmp(argv[i], "--trials") == 0) {
            trials = parseIntFlag("--trials", value("--trials"), 1, 1000);
        } else if (std::strcmp(argv[i], "--die-after") == 0) {
            die_after = parseIntFlag("--die-after", value("--die-after"),
                                     1, 1 << 20);
        } else if (std::strcmp(argv[i], "--fault-kind") == 0) {
            kind = parseFaultKind(value("--fault-kind"));
        } else if (std::strcmp(argv[i], "--fault-seed") == 0) {
            fault_seed = u64(parseIntFlag(
                "--fault-seed", value("--fault-seed"), 0, i64(1) << 62));
        } else if (std::strcmp(argv[i], "--fault-burst") == 0) {
            burst = parseIntFlag("--fault-burst", value("--fault-burst"),
                                 1, 64);
        } else if (std::strcmp(argv[i], "--fault-site") == 0) {
            site = value("--fault-site");
        } else if (std::strcmp(argv[i], "--check-resilience") == 0) {
            check_eps = parseDoubleFlag("--check-resilience",
                                        value("--check-resilience"),
                                        0.0, 1e9);
        } else {
            fatal(std::string("fault_sweep: unknown argument: ") +
                  argv[i]);
        }
    }
    fatalIf(resume && checkpoint_path.empty(),
            "--resume requires --checkpoint");

    ShardCheckpoint ckpt(checkpoint_path);
    if (resume)
        ckpt.load();

    StatsRegistry &reg = statsRegistry();
    for (int ri = 0; ri < kNumRates; ++ri)
        reg.scalar("fault.rates.r" + std::to_string(ri),
                   "per-site fault rate of sweep point r" +
                       std::to_string(ri))
            .set(kRates[ri]);

    // nrmse[scheme][rate] for the printed table and the gate.
    double nrmse[sizeof(kSchemes) / sizeof(kSchemes[0])][kNumRates] = {};
    constexpr u64 kNumShards =
        u64(sizeof(kSchemes) / sizeof(kSchemes[0])) * kNumRates;
    ProgressMeter progress("fault shard", kNumShards, opts.progress);
    u64 visited = 0;
    i64 computed = 0;
    int si = 0;
    for (const auto &sw : kSchemes) {
        for (int ri = 0; ri < kNumRates; ++ri) {
            const std::string key =
                std::string(sw.tag) + "-r" + std::to_string(ri);
            ResilienceResult res;
            if (resume && ckpt.has(key)) {
                res = ResilienceResult::deserialize(ckpt.find(key));
            } else {
                ResilienceSpec spec;
                spec.kern.scheme = sw.scheme;
                spec.kern.bits = 8;
                spec.trials = int(trials);
                spec.seed = fault_seed;
                spec.kind = kind;
                spec.burst_len = u32(burst);
                spec.rates = ratesForSite(site, kRates[ri]);
                res = runResilienceShard(spec);
                ckpt.record(key, res.serialize());
                ++computed;
                if (die_after > 0 && computed >= die_after) {
                    // Crash-safety self-test hook: die the hard way
                    // (no exit handlers, no artifact) after N computed
                    // shards, as a power cut would.
                    std::fflush(nullptr);
                    raise(SIGKILL);
                }
            }
            progress.update(++visited);
            nrmse[si][ri] = res.nrmse();
            const std::string slug =
                "fault." + std::string(sw.tag) + ".r" +
                std::to_string(ri);
            reg.scalar(slug + ".nrmse",
                       "faulted-vs-clean NRMSE (accumulator units)")
                .set(res.nrmse());
            reg.scalar(slug + ".mean_abs_err",
                       "mean |faulted - clean| per output")
                .set(res.meanAbsErr());
            reg.counter(slug + ".events",
                        "fault events injected in this shard") +=
                res.fault_events;
        }
        ++si;
    }

    std::printf("fault sweep: %d trials/shard, kind=%s, site=%s, "
                "seed=%llu\n",
                int(trials), faultKindName(kind), site.c_str(),
                static_cast<unsigned long long>(fault_seed));
    std::printf("%-8s", "scheme");
    for (int ri = 0; ri < kNumRates; ++ri)
        std::printf(" %12.0e", kRates[ri]);
    std::printf("\n");
    si = 0;
    for (const auto &sw : kSchemes) {
        std::printf("%-8s", sw.tag);
        for (int ri = 0; ri < kNumRates; ++ri)
            std::printf(" %12.3e", nrmse[si][ri]);
        std::printf("\n");
        ++si;
    }

    fatalIf(!reg.writeJsonFile(out_path, "fault_sweep"),
            "cannot write bench artifact: " + out_path);
    inform("wrote bench artifact: " + out_path);

    finalizeBench(opts);

    if (check_eps > 0.0) {
        // The resilience gate, on the lowest nonzero rate (r1): unary
        // rate coding must stay within EPS of fault-free while binary
        // parallel must not — the cross-over the paper's resilience
        // claim predicts.
        const double ur_r1 = nrmse[2][1];
        const double bp_r1 = nrmse[0][1];
        if (ur_r1 > check_eps) {
            std::fprintf(stderr,
                         "fault_sweep: UR nrmse %.3e at r1 exceeds "
                         "epsilon %.3e\n",
                         ur_r1, check_eps);
            return 1;
        }
        if (bp_r1 <= check_eps) {
            std::fprintf(stderr,
                         "fault_sweep: BP nrmse %.3e at r1 within "
                         "epsilon %.3e — binary should not be this "
                         "resilient\n",
                         bp_r1, check_eps);
            return 1;
        }
    }
    return 0;
}
