/**
 * @file
 * Design-space exploration over the array shape (the sweep the paper
 * sidesteps by adopting the Eyeriss and TPU shapes, Section IV-C2):
 * for a fixed PE budget, how do shape and aspect ratio trade utilization,
 * runtime, and on-chip energy for rate-coded uSystolic on 8-bit AlexNet?
 *
 * Also sweeps the PE budget at a fixed aspect ratio to show uSystolic's
 * scaling behavior (local interconnect => mild congestion penalty).
 */

#include <cstdio>

#include "common/cli.h"
#include "common/event_trace.h"
#include "common/table.h"
#include "hw/energy.h"
#include "workloads/alexnet.h"
#include "workloads/systems.h"

using namespace usys;

namespace {

struct ShapeResult
{
    double runtime_ms = 0.0;
    double onchip_uj = 0.0;
    double util = 0.0;
    double area_mm2 = 0.0;
};

ShapeResult
evaluate(int rows, int cols)
{
    SystemConfig sys = edgeSystem({Scheme::USystolicRate, 8, 6}, false);
    sys.array.rows = rows;
    sys.array.cols = cols;
    ShapeResult r;
    int layers = 0;
    for (const auto &layer : alexnetLayers()) {
        const auto stats = simulateLayer(sys, layer);
        r.runtime_ms += stats.runtime_s * 1e3;
        r.onchip_uj += layerEnergy(sys, stats).onchip_uj();
        r.util += stats.tiling.utilization;
        ++layers;
    }
    r.util /= layers;
    r.area_mm2 = onchipAreaMm2(sys);
    return r;
}

void
runDse()
{
    std::printf("=== DSE: aspect ratio at a ~168-PE budget (Unary-32c, "
                "8-bit AlexNet, no SRAM) ===\n");
    TablePrinter aspect({"shape", "PEs", "util %", "runtime ms",
                         "on-chip uJ", "area mm2"});
    const int shapes[][2] = {{4, 42},  {6, 28},  {12, 14},
                             {14, 12}, {28, 6},  {42, 4}};
    for (const auto &s : shapes) {
        const auto r = evaluate(s[0], s[1]);
        aspect.addRow({std::to_string(s[0]) + "x" + std::to_string(s[1]),
                       std::to_string(s[0] * s[1]),
                       TablePrinter::num(100 * r.util, 1),
                       TablePrinter::num(r.runtime_ms, 1),
                       TablePrinter::num(r.onchip_uj, 1),
                       TablePrinter::num(r.area_mm2, 3)});
    }
    aspect.print();

    std::printf("\n=== DSE: PE budget at ~square aspect ===\n");
    TablePrinter budget({"shape", "PEs", "util %", "runtime ms",
                         "on-chip uJ", "uJ x ms (EDP-ish)"});
    const int sizes[][2] = {{6, 7}, {12, 14}, {24, 28}, {48, 56},
                            {96, 112}};
    for (const auto &s : sizes) {
        const auto r = evaluate(s[0], s[1]);
        budget.addRow({std::to_string(s[0]) + "x" + std::to_string(s[1]),
                       std::to_string(s[0] * s[1]),
                       TablePrinter::num(100 * r.util, 1),
                       TablePrinter::num(r.runtime_ms, 1),
                       TablePrinter::num(r.onchip_uj, 1),
                       TablePrinter::num(r.onchip_uj * r.runtime_ms, 0)});
    }
    budget.print();
    std::printf("\nwide-short arrays finish AlexNet faster (fewer "
                "N-folds amortize the per-fold fill/drain), while "
                "utilization peaks for taller shapes; the Eyeriss 12x14 "
                "point the paper adopts balances the two. The PE-budget "
                "sweep shows the energy-delay optimum well above the "
                "edge budget — the edge design is area-, not EDP-, "
                "optimal.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts =
        parseBenchArgs(&argc, argv, "dse_array_shape");
    {
        ScopedTimer timer("dse_array_shape", "bench");
        runDse();
    }
    finalizeBench(opts);
    return 0;
}
