/**
 * @file
 * Quantifies Table I: accuracy / power efficiency / scalability /
 * generalizability of B-Systolic (BP), FSU (uGEMM-class), HUB (uGEMM-H)
 * and uSystolic, using the library's own measurements:
 *
 *  - accuracy: GEMM NRMSE of each scheme at 8-bit (functional models);
 *  - power efficiency: mean on-chip P ratio vs BP on 8-bit AlexNet edge;
 *  - scalability: per-PE area inflation from the edge to the cloud array
 *    (routing congestion), plus FSU's flip-flop weight storage;
 *  - generalizability: one instance's mean MAC utilization across the
 *    MLPerf-like suite vs the number of FSU instances required.
 */

#include <cmath>
#include <cstdio>

#include "common/cli.h"
#include "common/event_trace.h"
#include "common/prng.h"
#include "common/stats.h"
#include "common/table.h"
#include "arch/fsu_gemm.h"
#include "arch/functional.h"
#include "eval/experiments.h"
#include "hw/fsu_cost.h"
#include "workloads/alexnet.h"
#include "workloads/mlperf.h"

using namespace usys;

namespace {

double
gemmNrmse(Scheme scheme, int bits)
{
    Prng prng(77);
    const i32 max_mag = (1 << (bits - 1)) - 1;
    Matrix<i32> a(16, 64), b(64, 16);
    for (auto &v : a.data())
        v = i32(prng.below(2 * u64(max_mag) + 1)) - max_mag;
    for (auto &v : b.data())
        v = i32(prng.below(2 * u64(max_mag) + 1)) - max_mag;
    const auto exact = referenceGemm(a, b);
    GemmExecutor exec({scheme, bits, 0});
    const auto acc = exec.run(a, b);
    RmseTracker rmse;
    for (int m = 0; m < 16; ++m)
        for (int n = 0; n < 16; ++n)
            rmse.add(double(exact(m, n)),
                     double(acc(m, n)) * exec.resultScale());
    return rmse.normalizedRmse();
}

double
fsuNrmse(int bits)
{
    // Stream-level FSU pipeline with unary-domain accumulation — the
    // Table I "Low-High" accuracy column, measured.
    Prng prng(77);
    const i32 max_mag = (1 << (bits - 1)) - 1;
    Matrix<i32> a(8, 32), b(32, 8);
    for (auto &v : a.data())
        v = i32(prng.below(2 * u64(max_mag) + 1)) - max_mag;
    for (auto &v : b.data())
        v = i32(prng.below(2 * u64(max_mag) + 1)) - max_mag;
    const auto exact = referenceGemm(a, b);
    FsuGemmExecutor fsu(bits);
    const auto got = fsu.run(a, b);
    RmseTracker rmse;
    for (int m = 0; m < 8; ++m)
        for (int n = 0; n < 8; ++n)
            rmse.add(double(exact(m, n)),
                     got(m, n) * fsu.resultScale());
    return rmse.normalizedRmse();
}

double
perPeInflation(Scheme scheme)
{
    const double edge =
        arrayCost(ArrayConfig{12, 14, {scheme, 8, 0}, {}}).area_mm2.total() /
        168.0;
    const double cloud =
        arrayCost(ArrayConfig{256, 256, {scheme, 8, 0}, {}})
            .area_mm2.total() /
        65536.0;
    return cloud / edge;
}

void
runTable1()
{
    std::printf("=== Table I quantified ===\n\n");

    std::printf("accuracy (8-bit GEMM NRMSE; lower is better):\n");
    std::printf("  B-Systolic (BP) %.4f   uSystolic (UR) %.4f   "
                "uGEMM-H (UG) %.4f\n  FSU w/ scaled-adder accumulation %.4f "
                "(the Low end of Table I's Low-High range)\n\n",
                gemmNrmse(Scheme::BinaryParallel, 8),
                gemmNrmse(Scheme::USystolicRate, 8),
                gemmNrmse(Scheme::UgemmHybrid, 8), fsuNrmse(8));

    const auto eff = fig14Efficiency(true, 8, alexnetLayers());
    for (const auto &row : eff) {
        if (row.candidate == "Unary-32c" &&
            row.baseline == "Binary Parallel") {
            std::printf("power efficiency: uSystolic (Unary-32c) "
                        "delivers %.0fx the on-chip power efficiency of "
                        "B-Systolic on 8-bit AlexNet (edge)\n\n",
                        row.power_eff_x);
        }
    }

    std::printf("scalability (per-PE area inflation, 168 -> 65536 "
                "PEs):\n");
    std::printf("  BP %.2fx   BS %.2fx   UG %.2fx   UR %.2fx\n\n",
                perPeInflation(Scheme::BinaryParallel),
                perPeInflation(Scheme::BinarySerial),
                perPeInflation(Scheme::UgemmHybrid),
                perPeInflation(Scheme::USystolicRate));

    std::printf("generalizability:\n");
    const auto suite = mlperfSuite();
    const auto all = mlperfLayers();
    std::printf("  uSystolic: ONE 12x14 instance runs all %zu GEMM "
                "layers at %.1f%% mean utilization\n",
                all.size(), 100.0 * meanUtilization(true, 8, all));

    TablePrinter fsu({"FSU instance for", "weights (M)", "DFF storage",
                      "area mm2", "leakage W"});
    for (const auto &model : suite) {
        const auto cost = fsuInstanceCost(model.layers, 8);
        fsu.addRow({model.name,
                    TablePrinter::num(double(cost.weights) * 1e-6, 1),
                    TablePrinter::num(cost.storage_mb, 1) + " MB",
                    TablePrinter::num(cost.total_area_mm2, 1),
                    TablePrinter::num(cost.leak_w, 2)});
    }
    fsu.print();
    const auto alexnet_fsu = fsuInstanceCost(alexnetLayers(), 8);
    std::printf("\n  footnote 2 check: FSU-AlexNet needs %.1f MB of "
                "flip-flop weight storage (paper: 61.1 MB) — %.1fx the "
                "24 MB cloud-TPU SRAM, one instance PER model.\n",
                alexnet_fsu.storage_mb, alexnet_fsu.storage_mb / 24.0);
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts =
        parseBenchArgs(&argc, argv, "table1_comparison");
    {
        ScopedTimer timer("table1", "bench");
        runTable1();
    }
    finalizeBench(opts);
    return 0;
}
