/**
 * @file
 * End-to-end sweep benchmark: the executor acceptance gate.
 *
 * Runs the paper's 8-bit candidate x AlexNet-layer grid (the Figure
 * 10-14 shape) where every job does real work — the roofline math of
 * computeLayerStats plus a packed-engine SystolicGemm on a clamped
 * GEMM slice of the layer — under three threading regimes:
 *
 *   serial    one thread, outer grid loop serial (reference)
 *   forkjoin  the pre-executor regime: outer grid serial, inner tile
 *             parallelFor spawning+joining threads per call
 *   executor  outer grid on the persistent work-stealing pool, inner
 *             tile parallelism folded inline by the nesting rule
 *
 * Per-job checksums (GEMM accumulations + cycle counts) are asserted
 * identical across the three regimes, and the stats-registry deltas are
 * flushed exactly once, serially in job order — so `--stats-json`
 * output is byte-identical at any thread count while the wall-clock
 * numbers land only in the separate BENCH_e2e.json artifact (schema:
 * tools/bench_e2e_schema.json).
 *
 * With --min-speedup X the binary exits nonzero if the executor regime
 * is not X times faster than the fork-join regime; the check is skipped
 * on single-thread hosts where no speedup is possible.
 *
 * With --checkpoint PATH every job completed by the serial reference
 * pass is persisted (atomic rename-on-write); --resume restores those
 * outcomes verbatim (checksums, stats deltas, exact double bit
 * patterns) and runs only the remaining jobs, so the --stats-json dump
 * of a killed-and-resumed sweep is byte-identical to a straight run.
 * --die-after N SIGKILLs the process after N computed jobs (the ctest
 * crash-safety leg).
 */

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/checkpoint.h"
#include "common/cli.h"
#include "common/executor.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/prng.h"
#include "common/profiler.h"
#include "common/stats_registry.h"
#include "arch/array.h"
#include "eval/experiments.h"
#include "workloads/alexnet.h"
#include "workloads/systems.h"

namespace usys {
namespace {

/** One grid point: a candidate's edge system on one AlexNet layer. */
struct Job
{
    SystemConfig sys;
    GemmLayer layer;
    Matrix<i32> a, b; // clamped GEMM operands for the bit-level part
};

/** Deterministic per-job results, compared across threading regimes. */
struct JobOutcome
{
    i64 checksum = 0;
    FoldStatsDelta delta;
};

Matrix<i32>
randomCodes(int rows, int cols, Prng &prng)
{
    Matrix<i32> m(rows, cols);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            m(r, c) = i32(prng.below(255)) - 127;
    return m;
}

std::vector<Job>
buildJobs(int bits)
{
    // The full layer GEMMs would take minutes at bit level, so each job
    // runs a clamped slice — large enough (several folds per job) that
    // per-call thread-spawn overhead and pool hand-off both show up.
    const int gemm_m = 16;
    const int gemm_n = 56; // 4 column tiles on the 12x14 edge array

    std::vector<Job> jobs;
    u32 seed = 1;
    for (const auto &cand : paperCandidates(bits)) {
        for (const auto &layer : alexnetLayers()) {
            Job job;
            job.sys = edgeSystem(cand.kern, cand.with_sram);
            job.layer = layer;
            const int gemm_k = int(std::min<i64>(96, layer.k()));
            Prng prng(seed++);
            job.a = randomCodes(gemm_m, gemm_k, prng);
            job.b = randomCodes(gemm_k, gemm_n, prng);
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

void
runJob(const Job &job, JobOutcome &out)
{
    USYS_PROF_SCOPE("e2e.job");
    out.delta = FoldStatsDelta{};
    const LayerStats roofline = computeLayerStats(job.sys, job.layer);
    const SystolicGemm gemm(job.sys.array);
    const auto res = gemm.run(job.a, job.b, &out.delta);
    i64 sum = 0;
    for (i64 v : res.acc.data())
        sum += v;
    // Fold the roofline cycle totals in so both halves of the job are
    // covered by the cross-regime equality assertion.
    out.checksum = sum + i64(res.cycles) * 31 +
                   i64(roofline.compute_cycles) * 7;
}

/**
 * One sweep over the non-restored jobs; outer parallelism is the
 * regime knob. Restored jobs keep their checkpointed outcome.
 */
void
runSweep(const std::vector<Job> &jobs, const std::vector<u64> &pending,
         std::vector<JobOutcome> &outcomes, bool outer_parallel)
{
    if (outer_parallel) {
        parallelFor(0, pending.size(), [&](u64 i) {
            runJob(jobs[pending[i]], outcomes[pending[i]]);
        });
    } else {
        for (const u64 j : pending)
            runJob(jobs[j], outcomes[j]);
    }
}

/**
 * Checkpoint payload of one job outcome: the checksum, the counter
 * fields of the stats delta, and the histogram samples as exact double
 * bit patterns — everything flush() touches, so a restored job commits
 * byte-identical stats.
 */
std::string
serializeOutcome(const JobOutcome &out)
{
    using CK = ShardCheckpoint;
    const FoldStatsDelta &d = out.delta;
    std::string p = CK::packU64(u64(out.checksum));
    for (const u64 v :
         {d.folds, d.mac_slots, d.fold_cycles, d.bitstream_cycles,
          d.faults_weight_reg, d.faults_activation, d.faults_weight_stream,
          d.faults_accumulator, d.faults_dram, d.sparsity_zero_acts,
          d.sparsity_zero_weights, d.sparsity_skippable_macs,
          u64(d.m_rows_samples.size())}) {
        p += ' ';
        p += CK::packU64(v);
    }
    for (const double v : d.m_rows_samples) {
        p += ' ';
        p += CK::packDouble(v);
    }
    return p;
}

JobOutcome
deserializeOutcome(const std::string &payload)
{
    using CK = ShardCheckpoint;
    std::vector<std::string> fields;
    std::size_t pos = 0;
    while (pos <= payload.size()) {
        const std::size_t sp = payload.find(' ', pos);
        if (sp == std::string::npos) {
            fields.push_back(payload.substr(pos));
            break;
        }
        fields.push_back(payload.substr(pos, sp - pos));
        pos = sp + 1;
    }
    fatalIf(fields.size() < 14,
            "e2e checkpoint payload: too few fields");
    JobOutcome out;
    out.checksum = i64(CK::unpackU64(fields[0]));
    FoldStatsDelta &d = out.delta;
    d.folds = CK::unpackU64(fields[1]);
    d.mac_slots = CK::unpackU64(fields[2]);
    d.fold_cycles = CK::unpackU64(fields[3]);
    d.bitstream_cycles = CK::unpackU64(fields[4]);
    d.faults_weight_reg = CK::unpackU64(fields[5]);
    d.faults_activation = CK::unpackU64(fields[6]);
    d.faults_weight_stream = CK::unpackU64(fields[7]);
    d.faults_accumulator = CK::unpackU64(fields[8]);
    d.faults_dram = CK::unpackU64(fields[9]);
    d.sparsity_zero_acts = CK::unpackU64(fields[10]);
    d.sparsity_zero_weights = CK::unpackU64(fields[11]);
    d.sparsity_skippable_macs = CK::unpackU64(fields[12]);
    const u64 n_samples = CK::unpackU64(fields[13]);
    fatalIf(fields.size() != 14 + n_samples,
            "e2e checkpoint payload: sample count mismatch");
    d.m_rows_samples.reserve(n_samples);
    for (u64 i = 0; i < n_samples; ++i)
        d.m_rows_samples.push_back(
            CK::unpackDouble(fields[14 + std::size_t(i)]));
    return out;
}

/** Median wall time in milliseconds of `reps` sweep runs. */
template <typename Fn>
double
medianSweepMs(Fn &&sweep, int reps)
{
    std::vector<double> samples;
    for (int r = 0; r < reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        sweep();
        const auto stop = std::chrono::steady_clock::now();
        samples.push_back(
            std::chrono::duration<double, std::milli>(stop - start)
                .count());
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

void
checkOutcomes(const std::vector<JobOutcome> &ref,
              const std::vector<JobOutcome> &got,
              const std::vector<u64> &pending, const char *regime)
{
    for (const u64 j : pending) {
        fatalIf(ref[j].checksum != got[j].checksum,
                std::string("e2e_sweep: ") + regime +
                    " regime diverged from serial at job " +
                    std::to_string(j));
    }
}

} // namespace
} // namespace usys

int
main(int argc, char **argv)
{
    using namespace usys;

    BenchOptions opts = parseBenchArgs(&argc, argv, "e2e_sweep");

    int reps = 3;
    double min_speedup = 0.0;
    std::string out_path = "BENCH_e2e.json";
    std::string checkpoint_path;
    bool resume = false;
    i64 die_after = 0;
    for (int i = 1; i < argc; ++i) {
        auto value = [&](const char *flag) -> const char * {
            fatalIf(i + 1 >= argc,
                    std::string(flag) + " requires a value");
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--reps") == 0) {
            reps = int(parseIntFlag("--reps", value("--reps"), 1, 1000));
        } else if (std::strcmp(argv[i], "--min-speedup") == 0) {
            min_speedup = parseDoubleFlag(
                "--min-speedup", value("--min-speedup"), 0.0, 1e6);
        } else if (std::strcmp(argv[i], "--out") == 0) {
            out_path = value("--out");
        } else if (std::strcmp(argv[i], "--checkpoint") == 0) {
            checkpoint_path = value("--checkpoint");
        } else if (std::strcmp(argv[i], "--resume") == 0) {
            resume = true;
        } else if (std::strcmp(argv[i], "--die-after") == 0) {
            die_after = parseIntFlag("--die-after", value("--die-after"),
                                     1, 1 << 20);
        } else {
            fatal(std::string("e2e_sweep: unknown argument: ") + argv[i]);
        }
    }
    fatalIf(resume && checkpoint_path.empty(),
            "--resume requires --checkpoint");

    const int bits = 8;
    const auto jobs = buildJobs(bits);
    const unsigned threads = Executor::global().threads();

    std::vector<JobOutcome> serial_out(jobs.size());
    std::vector<JobOutcome> regime_out(jobs.size());

    // Restore checkpointed outcomes; only the rest is (re)computed —
    // in every regime, so timings compare like with like.
    ShardCheckpoint ckpt(checkpoint_path);
    if (resume)
        ckpt.load();
    std::vector<u64> pending;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        // ".s" marks the sparsity-census payload layout: entries from
        // pre-census binaries miss and recompute instead of crashing
        // the field-count check.
        const std::string key = "job" + std::to_string(j) + ".s";
        if (resume && ckpt.has(key))
            serial_out[j] = deserializeOutcome(ckpt.find(key));
        else
            pending.push_back(u64(j));
    }

    // --- serial reference -------------------------------------------------
    // The warm pass doubles as the checkpoint-recording pass (and hosts
    // the --die-after crash hook); the timed reps below re-run the same
    // pending jobs without touching the checkpoint.
    Executor::global().setThreads(1);
    ProgressMeter progress("e2e serial-ref job", pending.size(),
                           opts.progress);
    i64 computed = 0;
    for (const u64 j : pending) {
        runJob(jobs[j], serial_out[j]);
        ckpt.record("job" + std::to_string(j) + ".s",
                    serializeOutcome(serial_out[j]));
        ++computed;
        progress.update(u64(computed));
        if (die_after > 0 && computed >= die_after) {
            std::fflush(nullptr);
            raise(SIGKILL);
        }
    }
    const double serial_ms = medianSweepMs(
        [&] { runSweep(jobs, pending, serial_out, false); }, reps);

    // --- pre-executor fork-join regime ------------------------------------
    Executor::global().setThreads(threads);
    setForkJoinBaseline(true);
    runSweep(jobs, pending, regime_out, false);
    const double forkjoin_ms = medianSweepMs(
        [&] { runSweep(jobs, pending, regime_out, false); }, reps);
    setForkJoinBaseline(false);
    checkOutcomes(serial_out, regime_out, pending, "forkjoin");

    // --- persistent executor, outer grid parallel -------------------------
    runSweep(jobs, pending, regime_out, true);
    const double executor_ms = medianSweepMs(
        [&] { runSweep(jobs, pending, regime_out, true); }, reps);
    checkOutcomes(serial_out, regime_out, pending, "executor");

    // Registry deltas from the (many) timed sweeps are intentionally
    // discarded; commit exactly one sweep's worth, serially in job
    // order, so the stats artifact is byte-identical at any thread
    // count (and independent of reps).
    for (std::size_t j = 0; j < jobs.size(); ++j)
        serial_out[j].delta.flush(jobs[j].sys.array.kernel);

    const double vs_serial = serial_ms / executor_ms;
    const double vs_forkjoin = forkjoin_ms / executor_ms;
    i64 checksum = 0;
    for (const auto &out : serial_out)
        checksum += out.checksum;

    std::printf("e2e sweep: %zu jobs (%d-bit candidates x AlexNet), "
                "%u threads, %d reps\n",
                jobs.size(), bits, threads, reps);
    std::printf("%-10s %10s\n", "regime", "ms/sweep");
    std::printf("%-10s %10.2f\n", "serial", serial_ms);
    std::printf("%-10s %10.2f\n", "forkjoin", forkjoin_ms);
    std::printf("%-10s %10.2f\n", "executor", executor_ms);
    std::printf("speedup: %.2fx vs serial, %.2fx vs forkjoin\n",
                vs_serial, vs_forkjoin);

    // Wall-clock numbers go only into their own artifact, never into
    // the stats registry (whose dump must stay run-to-run identical).
    JsonWriter w;
    w.beginObject()
        .field("bench", "e2e_sweep")
        .field("schema_version", 1)
        .beginObject("stats")
        .beginObject("e2e")
        .field("jobs", u64(jobs.size()))
        .field("reps", reps)
        .field("threads", u64(threads))
        .field("serial_ms", serial_ms)
        .field("forkjoin_ms", forkjoin_ms)
        .field("executor_ms", executor_ms)
        .field("speedup_vs_serial_x", vs_serial)
        .field("speedup_vs_forkjoin_x", vs_forkjoin)
        .field("checksum", checksum)
        .field("steals", Executor::global().stealCount())
        .endObject()
        .endObject()
        .endObject();
    fatalIf(!writeTextFile(out_path, w.str()),
            "cannot write bench artifact: " + out_path);
    inform("wrote bench artifact: " + out_path);

    finalizeBench(opts);

    // The floor is only meaningful where parallel speedup is physically
    // possible: skip on single-thread configurations and on hosts whose
    // hardware cannot run two threads at once.
    const bool can_speed_up =
        threads > 1 && std::thread::hardware_concurrency() > 1;
    if (min_speedup > 0.0 && can_speed_up && vs_forkjoin < min_speedup) {
        std::fprintf(stderr,
                     "e2e_sweep: executor speedup %.2fx vs forkjoin "
                     "below required %.2fx\n",
                     vs_forkjoin, min_speedup);
        return 1;
    }
    if (min_speedup > 0.0 && !can_speed_up)
        inform("e2e_sweep: --min-speedup skipped (single-thread host)");
    return 0;
}
