/**
 * @file
 * End-to-end sweep benchmark: the executor acceptance gate.
 *
 * Runs the paper's 8-bit candidate x AlexNet-layer grid (the Figure
 * 10-14 shape) where every job does real work — the roofline math of
 * computeLayerStats plus a packed-engine SystolicGemm on a clamped
 * GEMM slice of the layer — under three threading regimes:
 *
 *   serial    one thread, outer grid loop serial (reference)
 *   forkjoin  the pre-executor regime: outer grid serial, inner tile
 *             parallelFor spawning+joining threads per call
 *   executor  outer grid on the persistent work-stealing pool, inner
 *             tile parallelism folded inline by the nesting rule
 *
 * Per-job checksums (GEMM accumulations + cycle counts) are asserted
 * identical across the three regimes, and the stats-registry deltas are
 * flushed exactly once, serially in job order — so `--stats-json`
 * output is byte-identical at any thread count while the wall-clock
 * numbers land only in the separate BENCH_e2e.json artifact (schema:
 * tools/bench_e2e_schema.json).
 *
 * With --min-speedup X the binary exits nonzero if the executor regime
 * is not X times faster than the fork-join regime; the check is skipped
 * on single-thread hosts where no speedup is possible.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/executor.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/prng.h"
#include "common/stats_registry.h"
#include "arch/array.h"
#include "eval/experiments.h"
#include "workloads/alexnet.h"
#include "workloads/systems.h"

namespace usys {
namespace {

/** One grid point: a candidate's edge system on one AlexNet layer. */
struct Job
{
    SystemConfig sys;
    GemmLayer layer;
    Matrix<i32> a, b; // clamped GEMM operands for the bit-level part
};

/** Deterministic per-job results, compared across threading regimes. */
struct JobOutcome
{
    i64 checksum = 0;
    FoldStatsDelta delta;
};

Matrix<i32>
randomCodes(int rows, int cols, Prng &prng)
{
    Matrix<i32> m(rows, cols);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            m(r, c) = i32(prng.below(255)) - 127;
    return m;
}

std::vector<Job>
buildJobs(int bits)
{
    // The full layer GEMMs would take minutes at bit level, so each job
    // runs a clamped slice — large enough (several folds per job) that
    // per-call thread-spawn overhead and pool hand-off both show up.
    const int gemm_m = 16;
    const int gemm_n = 56; // 4 column tiles on the 12x14 edge array

    std::vector<Job> jobs;
    u32 seed = 1;
    for (const auto &cand : paperCandidates(bits)) {
        for (const auto &layer : alexnetLayers()) {
            Job job;
            job.sys = edgeSystem(cand.kern, cand.with_sram);
            job.layer = layer;
            const int gemm_k = int(std::min<i64>(96, layer.k()));
            Prng prng(seed++);
            job.a = randomCodes(gemm_m, gemm_k, prng);
            job.b = randomCodes(gemm_k, gemm_n, prng);
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

void
runJob(const Job &job, JobOutcome &out)
{
    out.delta = FoldStatsDelta{};
    const LayerStats roofline = computeLayerStats(job.sys, job.layer);
    const SystolicGemm gemm(job.sys.array);
    const auto res = gemm.run(job.a, job.b, &out.delta);
    i64 sum = 0;
    for (i64 v : res.acc.data())
        sum += v;
    // Fold the roofline cycle totals in so both halves of the job are
    // covered by the cross-regime equality assertion.
    out.checksum = sum + i64(res.cycles) * 31 +
                   i64(roofline.compute_cycles) * 7;
}

/** One full sweep over the grid; outer parallelism is the regime knob. */
void
runSweep(const std::vector<Job> &jobs, std::vector<JobOutcome> &outcomes,
         bool outer_parallel)
{
    if (outer_parallel) {
        parallelFor(0, jobs.size(),
                    [&](u64 j) { runJob(jobs[j], outcomes[j]); });
    } else {
        for (std::size_t j = 0; j < jobs.size(); ++j)
            runJob(jobs[j], outcomes[j]);
    }
}

/** Median wall time in milliseconds of `reps` sweep runs. */
template <typename Fn>
double
medianSweepMs(Fn &&sweep, int reps)
{
    std::vector<double> samples;
    for (int r = 0; r < reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        sweep();
        const auto stop = std::chrono::steady_clock::now();
        samples.push_back(
            std::chrono::duration<double, std::milli>(stop - start)
                .count());
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

void
checkOutcomes(const std::vector<JobOutcome> &ref,
              const std::vector<JobOutcome> &got, const char *regime)
{
    for (std::size_t j = 0; j < ref.size(); ++j) {
        fatalIf(ref[j].checksum != got[j].checksum,
                std::string("e2e_sweep: ") + regime +
                    " regime diverged from serial at job " +
                    std::to_string(j));
    }
}

} // namespace
} // namespace usys

int
main(int argc, char **argv)
{
    using namespace usys;

    BenchOptions opts = parseBenchArgs(&argc, argv, "e2e_sweep");

    int reps = 3;
    double min_speedup = 0.0;
    std::string out_path = "BENCH_e2e.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--reps") == 0) {
            fatalIf(i + 1 >= argc, "--reps requires a value");
            reps = std::stoi(argv[++i]);
            fatalIf(reps < 1, "--reps: need at least 1");
        } else if (std::strcmp(argv[i], "--min-speedup") == 0) {
            fatalIf(i + 1 >= argc, "--min-speedup requires a value");
            min_speedup = std::stod(argv[++i]);
        } else if (std::strcmp(argv[i], "--out") == 0) {
            fatalIf(i + 1 >= argc, "--out requires a path");
            out_path = argv[++i];
        } else {
            fatal(std::string("e2e_sweep: unknown argument: ") + argv[i]);
        }
    }

    const int bits = 8;
    const auto jobs = buildJobs(bits);
    const unsigned threads = Executor::global().threads();

    std::vector<JobOutcome> serial_out(jobs.size());
    std::vector<JobOutcome> regime_out(jobs.size());

    // --- serial reference -------------------------------------------------
    Executor::global().setThreads(1);
    runSweep(jobs, serial_out, false); // warm the scratch arenas
    const double serial_ms =
        medianSweepMs([&] { runSweep(jobs, serial_out, false); }, reps);

    // --- pre-executor fork-join regime ------------------------------------
    Executor::global().setThreads(threads);
    setForkJoinBaseline(true);
    runSweep(jobs, regime_out, false);
    const double forkjoin_ms =
        medianSweepMs([&] { runSweep(jobs, regime_out, false); }, reps);
    setForkJoinBaseline(false);
    checkOutcomes(serial_out, regime_out, "forkjoin");

    // --- persistent executor, outer grid parallel -------------------------
    runSweep(jobs, regime_out, true);
    const double executor_ms =
        medianSweepMs([&] { runSweep(jobs, regime_out, true); }, reps);
    checkOutcomes(serial_out, regime_out, "executor");

    // Registry deltas from the (many) timed sweeps are intentionally
    // discarded; commit exactly one sweep's worth, serially in job
    // order, so the stats artifact is byte-identical at any thread
    // count (and independent of reps).
    for (std::size_t j = 0; j < jobs.size(); ++j)
        serial_out[j].delta.flush(jobs[j].sys.array.kernel);

    const double vs_serial = serial_ms / executor_ms;
    const double vs_forkjoin = forkjoin_ms / executor_ms;
    i64 checksum = 0;
    for (const auto &out : serial_out)
        checksum += out.checksum;

    std::printf("e2e sweep: %zu jobs (%d-bit candidates x AlexNet), "
                "%u threads, %d reps\n",
                jobs.size(), bits, threads, reps);
    std::printf("%-10s %10s\n", "regime", "ms/sweep");
    std::printf("%-10s %10.2f\n", "serial", serial_ms);
    std::printf("%-10s %10.2f\n", "forkjoin", forkjoin_ms);
    std::printf("%-10s %10.2f\n", "executor", executor_ms);
    std::printf("speedup: %.2fx vs serial, %.2fx vs forkjoin\n",
                vs_serial, vs_forkjoin);

    // Wall-clock numbers go only into their own artifact, never into
    // the stats registry (whose dump must stay run-to-run identical).
    JsonWriter w;
    w.beginObject()
        .field("bench", "e2e_sweep")
        .field("schema_version", 1)
        .beginObject("stats")
        .beginObject("e2e")
        .field("jobs", u64(jobs.size()))
        .field("reps", reps)
        .field("threads", u64(threads))
        .field("serial_ms", serial_ms)
        .field("forkjoin_ms", forkjoin_ms)
        .field("executor_ms", executor_ms)
        .field("speedup_vs_serial_x", vs_serial)
        .field("speedup_vs_forkjoin_x", vs_forkjoin)
        .field("checksum", checksum)
        .field("steals", Executor::global().stealCount())
        .endObject()
        .endObject()
        .endObject();
    fatalIf(!writeTextFile(out_path, w.str()),
            "cannot write bench artifact: " + out_path);
    inform("wrote bench artifact: " + out_path);

    finalizeBench(opts);

    // The floor is only meaningful where parallel speedup is physically
    // possible: skip on single-thread configurations and on hosts whose
    // hardware cannot run two threads at once.
    const bool can_speed_up =
        threads > 1 && std::thread::hardware_concurrency() > 1;
    if (min_speedup > 0.0 && can_speed_up && vs_forkjoin < min_speedup) {
        std::fprintf(stderr,
                     "e2e_sweep: executor speedup %.2fx vs forkjoin "
                     "below required %.2fx\n",
                     vs_forkjoin, min_speedup);
        return 1;
    }
    if (min_speedup > 0.0 && !can_speed_up)
        inform("e2e_sweep: --min-speedup skipped (single-thread host)");
    return 0;
}
