/**
 * @file
 * Ablations of uSystolic's three design pillars:
 *
 *  1. spatial-temporal bitstream reuse — rebuild the array with a full
 *     BSG/RNG stack in *every* PE (uGEMM-style duplication) and measure
 *     the area/energy this would cost;
 *  2. on-chip SRAM elimination — sweep a small SRAM back in and trace the
 *     on-chip vs total energy trade-off the paper's Section V-G mentions;
 *  3. RNG quality — replace the Sobol sequence with a maximal-length LFSR
 *     and measure the unary product error inflation.
 */

#include <cmath>
#include <cstdio>

#include "common/cli.h"
#include "common/event_trace.h"
#include "common/stats.h"
#include "common/table.h"
#include "arch/fifo.h"
#include "hw/energy.h"
#include "unary/lfsr.h"
#include "unary/sobol.h"
#include "sched/tiling.h"
#include "workloads/alexnet.h"
#include "workloads/systems.h"

using namespace usys;

namespace {

void
ablateBitstreamReuse()
{
    std::printf("=== Ablation 1: spatial-temporal bitstream reuse ===\n");
    const KernelConfig kern{Scheme::USystolicRate, 8, 0};
    struct Shape
    {
        int rows, cols;
        const char *tag;
    };
    for (const Shape &shape : {Shape{12, 14, "edge"},
                               Shape{256, 256, "cloud"}}) {
        const auto [rows, cols, tag] = shape;
        const ArrayConfig cfg{rows, cols, kern, {}};
        const auto with = arrayCost(cfg);

        // Without reuse every PE carries the leftmost column's BSGs —
        // modeled as a single-column array of the same PE count (every
        // PE of a one-column array is a "leftmost" PE), which keeps the
        // congestion model identical.
        const ArrayConfig no_reuse{rows * cols, 1, kern, {}};
        const auto without = arrayCost(no_reuse);
        const double without_mm2 = without.area_mm2.total();
        const double without_e = without.e_per_mac_slot_pj;

        std::printf("%s %dx%d: array %.3f -> %.3f mm2 (+%.1f%%), "
                    "MAC energy %.3f -> %.3f pJ (+%.1f%%)\n",
                    tag, rows, cols, with.area_mm2.total(), without_mm2,
                    100 * (without_mm2 / with.area_mm2.total() - 1),
                    with.e_per_mac_slot_pj, without_e,
                    100 * (without_e / with.e_per_mac_slot_pj - 1));
    }
    std::printf("\n");
}

void
ablateSramSize()
{
    std::printf("=== Ablation 2: adding a small SRAM back (Unary-32c, "
                "8-bit AlexNet, edge) ===\n");
    TablePrinter table({"SRAM/variable", "on-chip uJ", "DRAM uJ",
                        "total uJ", "on-chip area mm2"});
    for (u64 kib : {u64(0), u64(4), u64(16), u64(64), u64(256)}) {
        SystemConfig sys =
            edgeSystem({Scheme::USystolicRate, 8, 6}, kib > 0);
        if (kib > 0)
            sys.sram.bytes = kib * 1024;
        double onchip = 0, dram = 0;
        for (const auto &layer : alexnetLayers()) {
            const auto e = layerEnergy(sys, simulateLayer(sys, layer));
            onchip += e.onchip_uj();
            dram += e.dram_uj;
        }
        table.addRow({kib ? std::to_string(kib) + " KiB" : "none",
                      TablePrinter::num(onchip, 1),
                      TablePrinter::num(dram, 1),
                      TablePrinter::num(onchip + dram, 1),
                      TablePrinter::num(onchipAreaMm2(sys), 3)});
    }
    table.print();
    std::printf("(Section V-G: a small SRAM trades on-chip cost for "
                "off-chip DRAM energy)\n\n");
}

void
ablateRngQuality()
{
    std::printf("=== Ablation 3: Sobol vs LFSR weight RNG ===\n");
    const int mag_bits = 7;
    const u32 period = u32(1) << mag_bits;

    RmseTracker sobol_err, lfsr_err;
    SobolSequence sobol(0, mag_bits);
    for (u32 iabs = 4; iabs < period; iabs += 7) {
        for (u32 wabs = 4; wabs < period; wabs += 11) {
            const double expect =
                double(iabs) * wabs / double(period);
            // C-BSG consumes exactly `iabs` samples per full period.
            u32 ones_sobol = 0;
            sobol.reset();
            for (u32 j = 0; j < iabs; ++j)
                ones_sobol += sobol.next() < wabs;
            sobol_err.add(expect, ones_sobol);

            Lfsr lfsr(mag_bits);
            u32 ones_lfsr = 0;
            for (u32 j = 0; j < iabs; ++j)
                ones_lfsr += lfsr.next() < wabs;
            lfsr_err.add(expect, ones_lfsr);
        }
    }
    std::printf("product RMSE over operand sweep: Sobol %.3f LSB, LFSR "
                "%.3f LSB (%.1fx worse)\n",
                sobol_err.rmse(), lfsr_err.rmse(),
                lfsr_err.rmse() / sobol_err.rmse());
    std::printf("(why uSystolic configures the high-quality Sobol RNG, "
                "Section III-B)\n");
}

void
ablateFifoDepth()
{
    std::printf("\n=== Ablation 4: FIFO depth vs MAC interval (12-cycle "
                "DRAM jitter) ===\n");
    TablePrinter table({"design", "MAC cycles", "stall rate @ depth 1",
                        "stall-free depth"});
    struct Row
    {
        const char *tag;
        u32 mac;
    };
    for (const Row &row : {Row{"Binary Parallel", 1},
                           Row{"Binary Serial", 9},
                           Row{"Unary-32c", 33}, Row{"Unary-128c", 129}}) {
        const auto jt = analyzeJitterTolerance(row.mac, 12.0, 2048);
        table.addRow({row.tag, std::to_string(row.mac),
                      TablePrinter::num(jt.stall_rate_depth1, 4),
                      std::to_string(jt.required_depth)});
    }
    table.print();
    std::printf("(Section III-A: long MAC cycles hide memory timing "
                "fluctuation, enabling SRAM-less operation)\n");
}

void
ablatePreloadOverlap()
{
    std::printf("\n=== Ablation 5: double-buffered weight preload "
                "(8-bit AlexNet, edge) ===\n");
    TablePrinter table({"design", "serial Mcycles", "pipelined Mcycles",
                        "saved %"});
    for (Scheme s : {Scheme::BinaryParallel, Scheme::USystolicRate}) {
        const int ebt = s == Scheme::USystolicRate ? 6 : 0;
        const ArrayConfig array{12, 14, {s, 8, ebt}, {}};
        u64 serial = 0, pipelined = 0;
        for (const auto &layer : alexnetLayers()) {
            const auto t = tileLayer(array, layer);
            serial += t.compute_cycles;
            pipelined += t.pipelined_compute_cycles;
        }
        table.addRow({array.kernel.name(),
                      TablePrinter::num(double(serial) * 1e-6, 1),
                      TablePrinter::num(double(pipelined) * 1e-6, 1),
                      TablePrinter::num(
                          100.0 * (1.0 - double(pipelined) /
                                             double(serial)),
                          1)});
    }
    table.print();
    std::printf("(long unary MAC intervals amortize the preload anyway, "
                "so the optimization matters most for binary designs)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts =
        parseBenchArgs(&argc, argv, "ablation_reuse_sram");
    {
        ScopedTimer timer("ablation suite", "bench");
        ablateBitstreamReuse();
        ablateSramSize();
        ablateRngQuality();
        ablateFifoDepth();
        ablatePreloadOverlap();
    }
    finalizeBench(opts);
    return 0;
}
