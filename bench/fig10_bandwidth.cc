/**
 * @file
 * Regenerates Figure 10: layerwise SRAM and DRAM bandwidth of 8-bit
 * AlexNet on the edge and cloud configurations, for every computing
 * scheme, with and without on-chip SRAM.
 *
 * Paper shape to reproduce: binary designs demand GB/s-scale DRAM
 * bandwidth once SRAM is removed, while uSystolic stays at crawling-byte
 * levels (tenths of GB/s), enabling SRAM elimination (Section V-B).
 */

#include <cstdio>

#include "common/cli.h"
#include "common/event_trace.h"
#include "common/table.h"
#include "eval/experiments.h"

using namespace usys;

namespace {

void
printConfig(bool edge)
{
    std::printf("\n=== Figure 10%s: %s configuration, 8-bit AlexNet ===\n",
                edge ? "a" : "b", edge ? "edge (12x14)" : "cloud (256x256)");
    const auto rows = sweepAlexnet(edge, bandwidthCandidates(8));

    TablePrinter table({"layer", "design", "SRAM", "DRAM GB/s",
                        "SRAM GB/s", "overhead %"});
    for (const auto &row : rows) {
        const bool has_sram = row.stats.sram_total_bytes > 0;
        table.addRow({row.layer, row.candidate, has_sram ? "yes" : "no",
                      TablePrinter::num(row.stats.dram_bw_gbps, 3),
                      TablePrinter::num(row.stats.sram_bw_gbps, 3),
                      TablePrinter::num(row.stats.overhead_pct, 1)});
    }
    table.print();

    // Section V-B summary lines.
    double max_bp = 0, max_ur = 0, max_ur_fc = 0, min_ur = 1e18,
           min_ur_fc = 1e18;
    for (const auto &row : rows) {
        if (row.candidate == "Binary Parallel (no SRAM)")
            max_bp = std::max(max_bp, row.stats.dram_bw_gbps);
        if (row.candidate.rfind("Unary", 0) == 0) {
            const bool fc = row.layer.rfind("FC", 0) == 0;
            if (fc) {
                max_ur_fc = std::max(max_ur_fc, row.stats.dram_bw_gbps);
                min_ur_fc = std::min(min_ur_fc, row.stats.dram_bw_gbps);
            } else {
                max_ur = std::max(max_ur, row.stats.dram_bw_gbps);
                min_ur = std::min(min_ur, row.stats.dram_bw_gbps);
            }
        }
    }
    std::printf("summary (%s): BP-noSRAM max DRAM %.2f GB/s (paper 10.49);"
                " uSystolic Conv [%.2f, %.2f] (paper [0.11, 0.47]);"
                " FC [%.2f, %.2f] (paper [0.46, 1.08])\n",
                edge ? "edge" : "cloud", max_bp, min_ur, max_ur, min_ur_fc,
                max_ur_fc);
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts =
        parseBenchArgs(&argc, argv, "fig10_bandwidth");
    {
        ScopedTimer timer("fig10 edge", "bench");
        printConfig(true);
    }
    {
        ScopedTimer timer("fig10 cloud", "bench");
        printConfig(false);
    }
    finalizeBench(opts);
    return 0;
}
