#!/usr/bin/env python3
"""Compare two bench artifacts and gate on perf regressions.

    bench_compare.py BASELINE.json CANDIDATE.json [options]

Both files are `--stats-json` / BENCH_*.json documents ({bench,
schema_version, stats{...}}). The nested stats tree is flattened to
dotted keys; the direction of each metric is inferred from its name:

  lower is better   keys ending in _us, _ms, _ns, _s, _bytes, _cycles
  higher is better  keys ending in speedup_x, _gmacs, _throughput,
                    _utilization

A gated metric regresses when its relative change in the "worse"
direction exceeds the threshold (default 0.25 = 25%). Keys matching
neither suffix list are reported when they change but never gate, as
are keys whose baseline value is 0. `kernel.profile_overhead.*` is
skipped by default (A/A noise, not a signal), as is `*.shed_rate` —
the overload phase sheds as much as the retry storm asks it to, so
the rate measures scheduling luck, not daemon quality — and
`*.sparsity_frac`, which echoes the workload's configured activation
sparsity rather than measuring performance. The `sparsity.*.speedup_x`
ratios gate like any other speedup; callers typically skip the s0
point (dense input, ~1.0x by construction, pure A/A noise).

Options:
  --threshold F        default relative-change gate (0.25)
  --rule GLOB=F        per-metric threshold override (repeatable);
                       F may be `skip` to exempt matching metrics
  --skip GLOB          exempt matching metrics (repeatable)

Exit status: 0 when no gated metric regressed, 1 otherwise (also on a
metric present in the baseline but missing from the candidate). stdlib
only; runs from ctest.
"""

import argparse
import fnmatch
import json
import numbers
import sys

LOWER_BETTER = ("_us", "_ms", "_ns", "_s", "_bytes", "_cycles")
HIGHER_BETTER = ("speedup_x", "_gmacs", "_throughput", "_utilization",
                 ".rps", "hit_rate", "occupancy")
DEFAULT_SKIPS = ("*.profile_overhead.*", "*.shed_rate",
                 "*.sparsity_frac")


def flatten(node, prefix=""):
    """Numeric leaves of a nested stats tree as {dotted key: value}.
    Lists (histogram buckets) are not comparable point-wise; skipped."""
    flat = {}
    if isinstance(node, dict):
        for key, value in node.items():
            flat.update(flatten(value, f"{prefix}.{key}" if prefix
                                else key))
    elif isinstance(node, numbers.Number) and not isinstance(node, bool):
        flat[prefix] = float(node)
    return flat


def direction(key):
    """+1 higher-better, -1 lower-better, 0 ungated."""
    if key.endswith(HIGHER_BETTER):
        return 1
    if key.endswith(LOWER_BETTER):
        return -1
    return 0


def load_stats(path):
    with open(path) as f:
        doc = json.load(f)
    if "stats" not in doc:
        sys.exit(f"bench_compare: {path}: no 'stats' object")
    return doc.get("bench", "?"), flatten(doc["stats"])


def threshold_for(key, rules, default):
    """Most specific (longest) matching --rule glob wins; None = skip."""
    best = None
    for glob, value in rules:
        if fnmatch.fnmatchcase(key, glob):
            if best is None or len(glob) > len(best[0]):
                best = (glob, value)
    return default if best is None else best[1]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="default relative-change gate "
                             "(default 0.25)")
    parser.add_argument("--rule", action="append", default=[],
                        metavar="GLOB=F",
                        help="per-metric threshold (F may be 'skip')")
    parser.add_argument("--skip", action="append", default=[],
                        metavar="GLOB", help="exempt matching metrics")
    args = parser.parse_args()

    rules = []
    for rule in args.rule:
        glob, sep, value = rule.partition("=")
        if not sep:
            parser.error(f"--rule needs GLOB=F, got {rule!r}")
        rules.append((glob, None if value == "skip" else float(value)))
    for glob in list(args.skip) + list(DEFAULT_SKIPS):
        rules.append((glob, None))

    base_bench, base = load_stats(args.baseline)
    cand_bench, cand = load_stats(args.candidate)
    if base_bench != cand_bench:
        print(f"bench_compare: note: comparing different benches "
              f"({base_bench} vs {cand_bench})", file=sys.stderr)

    regressions = []
    improvements = []
    notes = []
    for key in sorted(set(base) | set(cand)):
        gate = threshold_for(key, rules, args.threshold)
        if key not in cand:
            # Skip-ruled metrics are exempt even when absent: an
            # availability-dependent section (e.g. a SIMD tier the
            # candidate host lacks) must not fail the comparison.
            if gate is None:
                notes.append(f"{key}: missing from candidate "
                             f"(skip-ruled)")
            else:
                regressions.append(f"{key}: missing from candidate "
                                   f"(baseline {base[key]:g})")
            continue
        if key not in base:
            notes.append(f"{key}: new metric ({cand[key]:g})")
            continue
        old, new = base[key], cand[key]
        sign = direction(key)
        if sign == 0 or gate is None or old == 0.0:
            if old != new:
                notes.append(f"{key}: {old:g} -> {new:g} (ungated)")
            continue
        rel = (new - old) / abs(old)
        arrow = f"{key}: {old:g} -> {new:g} ({rel:+.1%}, " \
                f"{'higher' if sign > 0 else 'lower'} is better)"
        if rel * sign < -gate:
            regressions.append(arrow + f" exceeds {gate:.0%}")
        elif rel * sign > gate:
            improvements.append(arrow)

    for note in notes:
        print(f"bench_compare: note: {note}")
    for line in improvements:
        print(f"bench_compare: improved: {line}")
    for line in regressions:
        print(f"bench_compare: REGRESSION: {line}", file=sys.stderr)
    gated = sum(1 for k in set(base) & set(cand)
                if direction(k) != 0 and base[k] != 0.0
                and threshold_for(k, rules, args.threshold) is not None)
    if regressions:
        print(f"bench_compare: FAILED ({len(regressions)} regressions "
              f"across {gated} gated metrics)", file=sys.stderr)
        return 1
    print(f"bench_compare: OK ({gated} gated metrics, "
          f"{len(improvements)} improved)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
