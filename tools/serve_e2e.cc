/**
 * @file
 * serve_e2e — end-to-end harness for the usysd daemon.
 *
 *   serve_e2e --daemon path/to/usysd [--clients N]
 *             [--cache-file PATH] [--stats-json PATH]
 *
 * Drives a REAL daemon process (fork/exec, ephemeral port scraped from
 * its stdout) and asserts the service contract:
 *
 *   1. N concurrent TCP clients each issue a mixed request set (sweeps
 *      with overlapping configs, per-client gemms); every response must
 *      be BYTE-identical to the result of calling the engine directly
 *      (decodeRequest + computeLayerStats + renderResults in-process) —
 *      batching, coalescing, and the cache must be invisible.
 *   2. SIGTERM produces a clean exit (status 0), a flushed result-cache
 *      checkpoint, and the requested --stats-json artifact.
 *   3. A restarted daemon on the same --cache-file reports restored
 *      entries via the stats op and serves responses byte-identical to
 *      the first run's; the shutdown op then stops it cleanly.
 *   4. Chaos leg: a daemon with a short io timeout survives garbage
 *      frames, an oversized length prefix, a truncated frame, and a
 *      client that goes silent mid-header (reaped by the io timeout,
 *      observed both as a closed socket and in the stats counters) —
 *      and keeps serving byte-identical responses throughout. Then
 *      SIGKILL mid-flight + restart on the same cache file must again
 *      be byte-identical, and a deliberately corrupted checkpoint must
 *      be quarantined to <cache>.corrupt with the daemon starting cold
 *      (restored == 0) yet still byte-identical.
 *
 * Exits 0 on success, 1 with a message on the first violated check.
 */

#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <fstream>

#include "common/cli.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/socket.h"
#include "sched/simulator.h"
#include "serve/client.h"
#include "serve/request.h"

namespace {

using namespace usys;

struct DaemonProc
{
    pid_t pid = -1;
    u16 port = 0;
    FILE *out = nullptr; // daemon stdout (the port line already read)
};

/** fork/exec the daemon, scrape "usysd listening on port N". */
DaemonProc
spawnDaemon(const std::string &binary, const std::vector<std::string> &args)
{
    int fds[2];
    fatalIf(::pipe(fds) != 0, "serve_e2e: pipe failed");
    const pid_t pid = ::fork();
    fatalIf(pid < 0, "serve_e2e: fork failed");
    if (pid == 0) {
        ::dup2(fds[1], STDOUT_FILENO);
        ::close(fds[0]);
        ::close(fds[1]);
        std::vector<char *> argv;
        argv.push_back(const_cast<char *>(binary.c_str()));
        for (const std::string &a : args)
            argv.push_back(const_cast<char *>(a.c_str()));
        argv.push_back(nullptr);
        ::execv(binary.c_str(), argv.data());
        std::perror("serve_e2e: execv");
        _exit(127);
    }
    ::close(fds[1]);
    DaemonProc proc;
    proc.pid = pid;
    proc.out = ::fdopen(fds[0], "r");
    fatalIf(!proc.out, "serve_e2e: fdopen failed");
    char line[256];
    while (std::fgets(line, sizeof(line), proc.out)) {
        unsigned port = 0;
        if (std::sscanf(line, "usysd listening on port %u", &port) == 1) {
            proc.port = u16(port);
            return proc;
        }
    }
    fatal("serve_e2e: daemon exited without announcing a port");
    return proc; // unreachable
}

/** SIGTERM (or not) + waitpid; true when the daemon exited 0. */
bool
stopDaemon(DaemonProc &proc, bool send_sigterm)
{
    if (send_sigterm)
        ::kill(proc.pid, SIGTERM);
    int status = 0;
    ::waitpid(proc.pid, &status, 0);
    if (proc.out)
        std::fclose(proc.out);
    proc.out = nullptr;
    return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

/**
 * The reference response: run the daemon's own decoder, then the
 * engine directly (no batching, no cache, no sockets).
 */
std::string
referenceResponse(const std::string &payload)
{
    ServeRequest req;
    std::string error;
    fatalIf(!decodeRequest(payload, req, error),
            "serve_e2e: reference decode failed: " + error);
    std::vector<std::string> fragments;
    fragments.reserve(req.jobs.size());
    for (const ServeJob &job : req.jobs)
        fragments.push_back(renderJobResult(
            job, computeLayerStats(buildSystem(job.spec), job.layer)));
    return renderResults(req.id, fragments);
}

/** The per-client request set: overlapping sweeps + a unique gemm. */
std::vector<std::string>
clientRequests(u32 client)
{
    std::vector<std::string> out;
    {
        JsonWriter w(0);
        w.beginObject();
        w.field("op", "sweep");
        w.field("id", u64(client) * 10 + 1);
        w.field("layers", "alexnet");
        w.beginArray("schemes");
        w.value(std::string("BP"));
        w.value(std::string("UR"));
        w.endArray();
        w.beginObject("system");
        w.field("bits", i64(4 + 2 * (client % 3))); // 3-way overlap
        w.endObject();
        w.endObject();
        out.push_back(w.str());
    }
    {
        JsonWriter w(0);
        w.beginObject();
        w.field("op", "gemm");
        w.field("id", u64(client) * 10 + 2);
        w.field("m", i64(8 + client));
        w.field("k", i64(128));
        w.field("n", i64(32));
        w.endObject();
        out.push_back(w.str());
    }
    return out;
}

/**
 * Run every client's request set concurrently against `port`; each
 * response is byte-compared against `expected`. Returns the observed
 * responses (for the cross-restart identity check).
 */
std::vector<std::vector<std::string>>
runClients(u16 port, u32 clients,
           const std::vector<std::vector<std::string>> &requests,
           const std::vector<std::vector<std::string>> &expected)
{
    std::vector<std::vector<std::string>> responses(clients);
    std::vector<std::string> failure(clients);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (u32 c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            ServeClient client;
            std::string err;
            if (!client.connect(port, &err)) {
                failure[c] = "connect: " + err;
                return;
            }
            for (std::size_t r = 0; r < requests[c].size(); ++r) {
                std::string response;
                if (!client.call(requests[c][r], &response)) {
                    failure[c] = "transport error";
                    return;
                }
                if (response != expected[c][r]) {
                    failure[c] =
                        "response differs from direct engine result\n"
                        "  got:  " + response.substr(0, 160) +
                        "\n  want: " + expected[c][r].substr(0, 160);
                    return;
                }
                responses[c].push_back(std::move(response));
            }
        });
    }
    for (auto &t : threads)
        t.join();
    for (u32 c = 0; c < clients; ++c)
        fatalIf(!failure[c].empty(), "serve_e2e: client " +
                                         std::to_string(c) + ": " +
                                         failure[c]);
    return responses;
}

bool
fileExists(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "r");
    if (f)
        std::fclose(f);
    return f != nullptr;
}

/** SIGKILL + waitpid; true when the daemon died by that signal. */
bool
killDaemon(DaemonProc &proc)
{
    ::kill(proc.pid, SIGKILL);
    int status = 0;
    ::waitpid(proc.pid, &status, 0);
    if (proc.out)
        std::fclose(proc.out);
    proc.out = nullptr;
    return WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
}

/** Raw 4-byte little-endian frame header for a claimed length. */
void
putHeader(char (&hdr)[4], u32 len)
{
    hdr[0] = char(len & 0xFF);
    hdr[1] = char((len >> 8) & 0xFF);
    hdr[2] = char((len >> 16) & 0xFF);
    hdr[3] = char((len >> 24) & 0xFF);
}

/** The daemon must still answer a ping after each abuse. */
void
expectAlive(u16 port, const char *after)
{
    ServeClient probe;
    std::string err;
    fatalIf(!probe.connect(port, &err),
            std::string("serve_e2e: daemon unreachable after ") + after +
                ": " + err);
    fatalIf(!probe.ping(99), std::string("serve_e2e: ping failed after ") +
                                 after);
}

/** Read an integer counter out of a compact stats response. */
long
scrapeCounter(const std::string &stats, const std::string &field)
{
    const std::string needle = "\"" + field + "\":";
    const std::size_t at = stats.find(needle);
    fatalIf(at == std::string::npos,
            "serve_e2e: stats op lacks a " + field + " counter: " + stats);
    return std::strtol(stats.c_str() + at + needle.size(), nullptr, 10);
}

std::string
statsOp(u16 port)
{
    ServeClient probe;
    std::string err;
    fatalIf(!probe.connect(port, &err), "serve_e2e: stats connect: " + err);
    std::string stats;
    fatalIf(!probe.call("{\"op\":\"stats\",\"id\":7}", &stats),
            "serve_e2e: stats op failed");
    return stats;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace usys;

    std::string daemon_path;
    std::string cache_file = "serve_e2e_cache.ckpt";
    std::string stats_json = "serve_e2e_stats.json";
    u32 clients = 8;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const auto next = [&]() -> const char * {
            fatalIf(i + 1 >= argc, std::string("missing value for ") + arg);
            return argv[++i];
        };
        if (std::strcmp(arg, "--daemon") == 0)
            daemon_path = next();
        else if (std::strcmp(arg, "--clients") == 0)
            clients = u32(parseIntFlag("--clients", next(), 1, 256));
        else if (std::strcmp(arg, "--cache-file") == 0)
            cache_file = next();
        else if (std::strcmp(arg, "--stats-json") == 0)
            stats_json = next();
        else
            fatal(std::string("serve_e2e: unknown argument ") + arg);
    }
    fatalIf(daemon_path.empty(), "serve_e2e: --daemon is required");

    std::remove(cache_file.c_str());
    std::remove(stats_json.c_str());

    // Reference results, computed once with the engine directly.
    std::vector<std::vector<std::string>> requests(clients), expected(
                                                                 clients);
    for (u32 c = 0; c < clients; ++c) {
        requests[c] = clientRequests(c);
        for (const std::string &payload : requests[c])
            expected[c].push_back(referenceResponse(payload));
    }

    // Leg 1: fresh daemon; concurrent clients; byte-identity; SIGTERM.
    DaemonProc first = spawnDaemon(
        daemon_path, {"--port", "0", "--quiet", "--cache-file", cache_file,
                      "--stats-json", stats_json});
    std::printf("serve_e2e: daemon pid %d on port %u\n", int(first.pid),
                unsigned(first.port));
    const auto responses =
        runClients(first.port, clients, requests, expected);
    std::printf("serve_e2e: %u clients byte-identical to direct engine\n",
                clients);
    fatalIf(!stopDaemon(first, /*send_sigterm=*/true),
            "serve_e2e: SIGTERMed daemon did not exit cleanly");
    fatalIf(!fileExists(cache_file),
            "serve_e2e: SIGTERM did not flush the cache checkpoint");
    fatalIf(!fileExists(stats_json),
            "serve_e2e: SIGTERM did not write the stats artifact");
    std::printf("serve_e2e: SIGTERM flushed %s and %s\n",
                cache_file.c_str(), stats_json.c_str());

    // Leg 2: warm restart on the same cache file.
    DaemonProc second = spawnDaemon(
        daemon_path,
        {"--port", "0", "--quiet", "--cache-file", cache_file});
    {
        ServeClient probe;
        std::string err;
        fatalIf(!probe.connect(second.port, &err),
                "serve_e2e: restart connect: " + err);
        std::string stats;
        fatalIf(!probe.call("{\"op\":\"stats\",\"id\":1}", &stats),
                "serve_e2e: stats op failed");
        const std::size_t at = stats.find("\"restored\":");
        fatalIf(at == std::string::npos,
                "serve_e2e: stats op lacks a restored counter");
        const long restored =
            std::strtol(stats.c_str() + at + 11, nullptr, 10);
        fatalIf(restored <= 0,
                "serve_e2e: restarted daemon restored no cache entries: " +
                    stats);
        std::printf("serve_e2e: restart restored %ld cache entries\n",
                    restored);
    }
    const auto warm = runClients(second.port, clients, requests, expected);
    fatalIf(warm != responses,
            "serve_e2e: post-restart responses differ from first run");
    std::printf("serve_e2e: post-restart responses byte-identical\n");
    {
        // The shutdown op must stop the daemon as cleanly as SIGTERM.
        ServeClient stopper;
        std::string err;
        fatalIf(!stopper.connect(second.port, &err),
                "serve_e2e: shutdown connect: " + err);
        std::string response;
        fatalIf(!stopper.call("{\"op\":\"shutdown\",\"id\":2}", &response),
                "serve_e2e: shutdown op failed");
    }
    fatalIf(!stopDaemon(second, /*send_sigterm=*/false),
            "serve_e2e: shutdown op did not exit the daemon cleanly");
    std::printf("serve_e2e: shutdown op exited daemon cleanly\n");

    // Leg 3 (chaos): hostile frames, a silent peer, SIGKILL mid-flight,
    // and a corrupted checkpoint — the daemon must shrug all of it off
    // and keep serving byte-identical responses.
    DaemonProc chaos = spawnDaemon(
        daemon_path, {"--port", "0", "--quiet", "--cache-file", cache_file,
                      "--io-timeout-ms", "300"});
    std::printf("serve_e2e: chaos daemon pid %d on port %u\n",
                int(chaos.pid), unsigned(chaos.port));
    {
        // Garbage bytes: not even a sane header (decodes to ~2.6 GiB).
        std::string err;
        Socket raw = connectLoopback(chaos.port, &err);
        fatalIf(!raw.valid(), "serve_e2e: garbage connect: " + err);
        const char junk[8] = {'\x9c', '\x8f', '\x7a', '\x9e',
                              'j',    'u',    'n',    'k'};
        raw.sendAll(junk, sizeof(junk));
        raw.setIoTimeoutMs(5000);
        char byte;
        fatalIf(raw.recvAll(&byte, 1),
                "serve_e2e: daemon answered a garbage frame instead of "
                "closing the connection");
        fatalIf(raw.timedOut(),
                "serve_e2e: daemon did not close the garbage connection");
    }
    expectAlive(chaos.port, "garbage frame");
    {
        // Oversized length prefix: one past the frame cap.
        std::string err;
        Socket raw = connectLoopback(chaos.port, &err);
        fatalIf(!raw.valid(), "serve_e2e: oversize connect: " + err);
        char hdr[4];
        putHeader(hdr, kMaxFrameBytes + 1);
        raw.sendAll(hdr, sizeof(hdr));
        raw.setIoTimeoutMs(5000);
        char byte;
        fatalIf(raw.recvAll(&byte, 1),
                "serve_e2e: daemon answered an oversized frame");
        fatalIf(raw.timedOut(),
                "serve_e2e: daemon did not close the oversized connection");
    }
    expectAlive(chaos.port, "oversized frame");
    {
        // Truncated frame: header promises 100 bytes, 10 arrive, close.
        std::string err;
        Socket raw = connectLoopback(chaos.port, &err);
        fatalIf(!raw.valid(), "serve_e2e: truncated connect: " + err);
        char hdr[4];
        putHeader(hdr, 100);
        raw.sendAll(hdr, sizeof(hdr));
        raw.sendAll("0123456789", 10);
        raw.close();
    }
    expectAlive(chaos.port, "truncated frame");
    {
        // Silent client: half a header, then nothing. The io timeout
        // must reap the connection — observed as a FIN on our side
        // (recv returns EOF, not our own 5 s timeout).
        std::string err;
        Socket raw = connectLoopback(chaos.port, &err);
        fatalIf(!raw.valid(), "serve_e2e: silent connect: " + err);
        char hdr[4];
        putHeader(hdr, 16);
        raw.sendAll(hdr, 2);
        raw.setIoTimeoutMs(5000);
        char byte;
        fatalIf(raw.recvAll(&byte, 1),
                "serve_e2e: daemon sent data to a silent client");
        fatalIf(raw.timedOut(),
                "serve_e2e: silent client was not reaped by the io "
                "timeout within 5s");
    }
    expectAlive(chaos.port, "silent client");
    {
        const std::string stats = statsOp(chaos.port);
        const long reaped = scrapeCounter(stats, "io_timeouts");
        fatalIf(reaped < 1,
                "serve_e2e: stats do not record the io-timeout reap: " +
                    stats);
        std::printf("serve_e2e: chaos frames survived; io_timeouts=%ld\n",
                    reaped);
    }
    // Chaos daemon must still be byte-identical after all that abuse.
    const auto chaos_resp =
        runClients(chaos.port, clients, requests, expected);
    fatalIf(chaos_resp != responses,
            "serve_e2e: chaos-leg responses differ from first run");

    // SIGKILL mid-flight: a client hammers the daemon while it dies.
    std::thread hammer([&] {
        ServeClient client;
        if (!client.connect(chaos.port))
            return;
        for (u32 r = 0; r < 10000; ++r) {
            JsonWriter w(0);
            w.beginObject();
            w.field("op", "gemm");
            w.field("id", u64(9000 + r));
            w.field("m", i64(8 + (r % 8)));
            w.field("k", i64(96));
            w.field("n", i64(24));
            w.endObject();
            std::string response;
            if (!client.call(w.str(), &response))
                return; // daemon died mid-exchange: expected
        }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    fatalIf(!killDaemon(chaos), "serve_e2e: SIGKILL did not take");
    hammer.join();
    std::printf("serve_e2e: daemon SIGKILLed mid-flight\n");

    // Restart on the same cache file: the checkpoint written by the
    // last clean shutdown must load (atomic writes — SIGKILL cannot
    // tear it) and responses must again be byte-identical.
    DaemonProc revived = spawnDaemon(
        daemon_path,
        {"--port", "0", "--quiet", "--cache-file", cache_file});
    const auto revived_resp =
        runClients(revived.port, clients, requests, expected);
    fatalIf(revived_resp != responses,
            "serve_e2e: post-SIGKILL-restart responses differ");
    std::printf("serve_e2e: post-SIGKILL restart byte-identical\n");
    fatalIf(!stopDaemon(revived, /*send_sigterm=*/true),
            "serve_e2e: revived daemon did not exit cleanly");

    // Corrupted checkpoint: flip one byte in the body. The next daemon
    // must quarantine it, start cold, and still serve byte-identically.
    {
        std::ifstream in(cache_file, std::ios::binary);
        std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
        in.close();
        fatalIf(bytes.size() < 64, "serve_e2e: cache file too small");
        bytes[bytes.size() / 2] ^= 0x01;
        std::ofstream outf(cache_file,
                           std::ios::binary | std::ios::trunc);
        outf.write(bytes.data(), std::streamsize(bytes.size()));
    }
    const std::string corrupt_file = cache_file + ".corrupt";
    std::remove(corrupt_file.c_str());
    DaemonProc cold = spawnDaemon(
        daemon_path,
        {"--port", "0", "--quiet", "--cache-file", cache_file});
    {
        const std::string stats = statsOp(cold.port);
        fatalIf(scrapeCounter(stats, "restored") != 0,
                "serve_e2e: corrupted checkpoint was restored: " + stats);
        fatalIf(!fileExists(corrupt_file),
                "serve_e2e: corrupted checkpoint was not quarantined to " +
                    corrupt_file);
    }
    const auto cold_resp = runClients(cold.port, clients, requests, expected);
    fatalIf(cold_resp != responses,
            "serve_e2e: cold-start responses differ from first run");
    fatalIf(!stopDaemon(cold, /*send_sigterm=*/true),
            "serve_e2e: cold daemon did not exit cleanly");
    std::remove(corrupt_file.c_str());
    std::printf("serve_e2e: corrupted checkpoint quarantined, cold start "
                "byte-identical — all OK\n");
    return 0;
}
