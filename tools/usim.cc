/**
 * @file
 * usim — command-line front end to the uSystolic simulator (the
 * uSystolic-Sim utility a downstream user drives directly).
 *
 * Usage:
 *   usim [--scheme bp|bs|ur|ut|ug] [--bits N] [--ebt n]
 *        [--rows R] [--cols C] [--edge|--cloud] [--sram|--no-sram]
 *        [--trace] --layers SPEC
 *
 * SPEC: ';'-separated conv:IH,IW,IC,WH,WW,S,OC / matmul:M,K,N /
 * alexnet / mlperf.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/cli.h"
#include "common/executor.h"
#include "common/logging.h"
#include "common/simd.h"
#include "common/table.h"
#include "eval/experiments.h"
#include "eval/network.h"
#include "hw/energy.h"
#include "sched/trace.h"
#include "workloads/layer_parse.h"
#include "workloads/systems.h"

using namespace usys;

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: usim [options] --layers SPEC\n"
        "  --scheme bp|bs|ur|ut|ug|tubgemm|tugemm\n"
        "                            computing scheme (default ur)\n"
        "  --bits N                  data bitwidth (default 8)\n"
        "  --ebt n                   early-termination EBT (ur only)\n"
        "  --rows R --cols C         array shape (overrides preset)\n"
        "  --edge | --cloud          system preset (default edge)\n"
        "  --sram | --no-sram        force SRAM presence\n"
        "  --trace                   use the trace-driven memory model\n"
        "  --no-packed               force the scalar simulation engine\n"
        "  --no-panel                disable cache-blocked panel GEMM\n"
        "  --panel-kb N              panel arena budget in KiB (default:\n"
        "                            USYS_L2_KB, else detected L2)\n"
        "  --no-zero-skip            disable the zero-stream fast path\n"
        "  --no-sparse               disable sparsity exploitation "
        "(census stays)\n"
        "  --sparsity F|measured     activation sparsity: F in [0,1] for\n"
        "                            every layer, or 'measured' to use the\n"
        "                            AlexLite-measured per-layer fractions\n"
        "                            (alexnet spec only)\n"
        "  --threads N               executor thread count (0 = auto:\n"
        "                            USYS_THREADS, else all cores)\n"
        "  --simd auto|avx512|avx2|neon|generic\n"
        "                            SIMD kernel tier (overrides "
        "USYS_SIMD)\n"
        "  --csv                     machine-readable output\n"
        "  --network                 chained inference (inter-layer "
        "traffic accounted)\n"
        "  --layers SPEC             e.g. 'alexnet' or "
        "'conv:31,31,96,5,5,1,256;matmul:1,9216,4096'\n");
    std::exit(1);
}

Scheme
parseScheme(const std::string &tag)
{
    if (tag == "bp")
        return Scheme::BinaryParallel;
    if (tag == "bs")
        return Scheme::BinarySerial;
    if (tag == "ur")
        return Scheme::USystolicRate;
    if (tag == "ut")
        return Scheme::USystolicTemporal;
    if (tag == "ug")
        return Scheme::UgemmHybrid;
    if (tag == "tub" || tag == "tubgemm")
        return Scheme::TubGemm;
    if (tag == "tu" || tag == "tugemm")
        return Scheme::TuGemm;
    fatal("unknown scheme: " + tag);
}

} // namespace

int
main(int argc, char **argv)
{
    Scheme scheme = Scheme::USystolicRate;
    int bits = 8, ebt = 0, rows = 0, cols = 0;
    bool edge = true, trace = false, csv = false, network = false;
    int sram_override = -1; // -1 auto, 0 off, 1 on
    double sparsity = -1.0; // -1 = dense (leave act_sparsity alone)
    bool measured_sparsity = false;
    std::string layer_spec;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--scheme")
            scheme = parseScheme(next());
        else if (arg == "--bits")
            bits = int(parseIntFlag("--bits", next().c_str(), 2, 16));
        else if (arg == "--ebt")
            ebt = int(parseIntFlag("--ebt", next().c_str(), 0, 16));
        else if (arg == "--rows")
            rows = int(parseIntFlag("--rows", next().c_str(), 1, 4096));
        else if (arg == "--cols")
            cols = int(parseIntFlag("--cols", next().c_str(), 1, 4096));
        else if (arg == "--edge")
            edge = true;
        else if (arg == "--cloud")
            edge = false;
        else if (arg == "--sram")
            sram_override = 1;
        else if (arg == "--no-sram")
            sram_override = 0;
        else if (arg == "--trace")
            trace = true;
        else if (arg == "--no-packed")
            setPackedEngineEnabled(false);
        else if (arg == "--no-panel")
            setPanelGemmEnabled(false);
        else if (arg == "--panel-kb")
            setPanelBudgetKb(u32(
                parseIntFlag("--panel-kb", next().c_str(), 16, 1048576)));
        else if (arg == "--no-zero-skip")
            setZeroSkipEnabled(false);
        else if (arg == "--no-sparse")
            setSparseEnabled(false);
        else if (arg == "--sparsity") {
            const std::string v = next();
            if (v == "measured") {
                measured_sparsity = true;
            } else {
                try {
                    sparsity = std::stod(v);
                } catch (...) {
                    fatal("--sparsity expects a fraction or 'measured'");
                }
                fatalIf(sparsity < 0.0 || sparsity > 1.0,
                        "--sparsity outside [0, 1]");
            }
        }
        else if (arg == "--threads") {
            const i64 n =
                parseIntFlag("--threads", next().c_str(), 0, 4096);
            Executor::global().setThreads(unsigned(n));
        }
        else if (arg == "--simd")
            setSimdMode(next());
        else if (arg == "--csv")
            csv = true;
        else if (arg == "--network")
            network = true;
        else if (arg == "--layers")
            layer_spec = next();
        else
            usage();
    }
    if (layer_spec.empty())
        usage();

    std::vector<GemmLayer> layers;
    if (measured_sparsity) {
        fatalIf(layer_spec != "alexnet",
                "--sparsity measured requires --layers alexnet");
        layers = alexnetLayersMeasuredSparsity();
    } else {
        layers = parseLayerList(layer_spec);
        if (sparsity >= 0.0)
            for (auto &layer : layers)
                layer.act_sparsity = sparsity;
    }

    KernelConfig kern{scheme, bits, ebt};
    kern.check();
    const bool with_sram =
        sram_override >= 0 ? sram_override == 1 : !isUnary(scheme);
    SystemConfig sys =
        edge ? edgeSystem(kern, with_sram) : cloudSystem(kern, with_sram);
    if (rows > 0)
        sys.array.rows = rows;
    if (cols > 0)
        sys.array.cols = cols;

    if (network) {
        const auto net = simulateNetwork(sys, layers);
        std::printf("network: %zu layers, runtime %.2f ms, on-chip %.1f "
                    "uJ, DRAM %.1f uJ, total %.1f uJ, %.2f MB of "
                    "inter-layer activations kept on-chip\n",
                    net.layers.size(), net.runtime_s * 1e3,
                    net.onchip_uj, net.dram_uj, net.total_uj(),
                    double(net.interlayer_saved_bytes) / 1e6);
        return 0;
    }

    if (csv) {
        std::printf("layer,m,k,n,utilization,runtime_s,overhead_pct,"
                    "dram_gbps,onchip_uj,total_uj\n");
    } else {
        std::printf("usim: %s, %dx%d array, %s, SRAM %s, %s model\n",
                    kern.name().c_str(), sys.array.rows, sys.array.cols,
                    edge ? "edge" : "cloud", with_sram ? "on" : "off",
                    trace ? "trace" : "roofline");
    }

    TablePrinter table({"layer", "M", "K", "N", "util %", "runtime ms",
                        "overhead %", "DRAM GB/s", "on-chip uJ",
                        "total uJ"});
    double total_runtime = 0.0, total_onchip = 0.0, total_uj = 0.0;
    for (const auto &layer : layers) {
        const auto stats = simulateLayer(sys, layer);
        const auto energy = layerEnergy(sys, stats);
        double runtime = stats.runtime_s, ovh = stats.overhead_pct,
               bw = stats.dram_bw_gbps;
        if (trace) {
            const auto tr = traceLayer(sys, layer);
            runtime = tr.runtime_s;
            ovh = tr.overhead_pct;
            bw = tr.dram_bw_gbps;
        }
        total_runtime += runtime;
        total_onchip += energy.onchip_uj();
        total_uj += energy.total_uj();
        if (csv) {
            std::printf("%s,%lld,%lld,%lld,%.4f,%.6e,%.2f,%.4f,%.3f,"
                        "%.3f\n",
                        layer.name.c_str(), (long long)layer.m(),
                        (long long)layer.k(), (long long)layer.n(),
                        stats.tiling.utilization, runtime, ovh, bw,
                        energy.onchip_uj(), energy.total_uj());
            continue;
        }
        table.addRow({layer.name, std::to_string(layer.m()),
                      std::to_string(layer.k()),
                      std::to_string(layer.n()),
                      TablePrinter::num(100 * stats.tiling.utilization, 1),
                      TablePrinter::num(runtime * 1e3, 3),
                      TablePrinter::num(ovh, 1),
                      TablePrinter::num(bw, 3),
                      TablePrinter::num(energy.onchip_uj(), 1),
                      TablePrinter::num(energy.total_uj(), 1)});
    }
    if (csv)
        return 0;
    table.print();
    std::printf("totals: runtime %.2f ms, on-chip %.1f uJ, total %.1f uJ,"
                " on-chip area %.3f mm2\n",
                total_runtime * 1e3, total_onchip, total_uj,
                onchipAreaMm2(sys));
    return 0;
}
