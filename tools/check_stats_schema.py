#!/usr/bin/env python3
"""Validate machine-readable bench artifacts.

Two modes, stdlib only (runs from ctest):

  check_stats_schema.py --schema tools/stats_schema.json stats.json
      Assert the stats JSON written by `<bench> --stats-json` contains
      every dotted path the checked-in schema requires, with numeric
      leaf values.

  check_stats_schema.py --trace trace.json
      Assert the file written by `<bench> --trace-out` is a loadable
      Chrome Trace Event Format document (the shape chrome://tracing
      and ui.perfetto.dev accept).

Exit status 0 on success; 1 with a per-path error listing otherwise.
"""

import argparse
import json
import numbers
import sys


def lookup(tree, dotted):
    """Walk a nested dict along a dotted path; None when absent."""
    node = tree
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def leaf_value(node):
    """The numeric value of a stats leaf (histograms nest a dict)."""
    if isinstance(node, dict):
        return node.get("count")
    return node


def expand(templates, schemes, layers):
    for template in templates:
        for scheme in schemes:
            if "<layer>" in template:
                for layer in range(layers):
                    yield (template.replace("<scheme>", scheme)
                           .replace("<layer>", str(layer)))
            else:
                yield template.replace("<scheme>", scheme)


def check_stats(path, schema_path):
    with open(schema_path) as f:
        schema = json.load(f)
    with open(path) as f:
        doc = json.load(f)

    errors = []
    for key in ("bench", "schema_version", "stats"):
        if key not in doc:
            errors.append(f"missing top-level key: {key}")
    if doc.get("schema_version") != schema["schema_version"]:
        errors.append(
            f"schema_version {doc.get('schema_version')} != "
            f"{schema['schema_version']}")
    stats = doc.get("stats", {})

    required = list(expand(schema["per_layer_required"],
                           schema["schemes"], schema["layers"]))
    required += list(expand(schema["per_scheme_required"],
                            schema["schemes"], schema["layers"]))
    required += schema["global_required"]

    for dotted in required:
        node = lookup(stats, dotted)
        if node is None:
            errors.append(f"missing stat: {dotted}")
            continue
        value = leaf_value(node)
        if not isinstance(value, numbers.Number):
            errors.append(f"non-numeric stat: {dotted} = {value!r}")
    return errors


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)

    errors = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    if not events:
        errors.append("traceEvents is empty")
    names = set()
    for i, event in enumerate(events):
        for key in ("ph", "pid", "tid", "name"):
            if key not in event:
                errors.append(f"event {i} missing key {key!r}")
        ph = event.get("ph")
        if ph == "X" and "dur" not in event:
            errors.append(f"event {i}: complete event without dur")
        if ph != "M" and "ts" not in event:
            errors.append(f"event {i} missing ts")
        if ph == "M":
            names.add(event.get("args", {}).get("name"))
    if "thread_name" not in {e.get("name") for e in events}:
        errors.append("no thread_name metadata (tracks unlabeled)")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifact", help="stats or trace JSON file")
    parser.add_argument("--schema", help="stats schema (stats mode)")
    parser.add_argument("--trace", action="store_true",
                        help="validate a Chrome trace instead of stats")
    args = parser.parse_args()

    if args.trace:
        errors = check_trace(args.artifact)
    else:
        if not args.schema:
            parser.error("--schema is required in stats mode")
        errors = check_stats(args.artifact, args.schema)

    if errors:
        for error in errors:
            print(f"check_stats_schema: {error}", file=sys.stderr)
        print(f"check_stats_schema: FAILED ({len(errors)} errors) "
              f"on {args.artifact}", file=sys.stderr)
        return 1
    print(f"check_stats_schema: OK ({args.artifact})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
