#!/usr/bin/env python3
"""Validate self-profiling artifacts (stdlib only; runs from ctest).

Three modes:

  check_profile_schema.py [--min-coverage F] profile.json
      Assert the call-tree JSON written by `<bench> --profile-json` is
      well-formed: required top-level keys, recursively valid nodes
      (name / calls / incl_ns / excl_ns / children, siblings unique and
      sorted by name), and — with --min-coverage — that the root's
      inclusive time covers at least that fraction of wall_ns, i.e. the
      instrumentation actually brackets the run.

  check_profile_schema.py --metrics [--min-samples N] metrics.jsonl
      Assert the JSON-lines file written by `--metrics-out` has at
      least N samples, each with ts_ms / sample / stats / exec,
      consecutive sample indices, and nondecreasing timestamps.

  check_profile_schema.py --collapsed profile.txt
      Assert the Brendan-Gregg collapsed-stack file written by
      `--profile-collapsed` has only `frame;frame;... <ns>` lines.

Exit status 0 on success; 1 with a per-error listing otherwise.
"""

import argparse
import json
import numbers
import sys

NODE_KEYS = ("name", "calls", "incl_ns", "excl_ns", "children")


def check_node(node, path, errors):
    """Recursively validate one merged call-tree node."""
    if not isinstance(node, dict):
        errors.append(f"{path}: node is not an object")
        return
    for key in NODE_KEYS:
        if key not in node:
            errors.append(f"{path}: missing key {key!r}")
    name = node.get("name")
    if not isinstance(name, str) or not name:
        errors.append(f"{path}: name must be a non-empty string")
    for key in ("calls", "incl_ns", "excl_ns"):
        value = node.get(key)
        if not isinstance(value, numbers.Number) or value < 0:
            errors.append(f"{path}: {key} must be a number >= 0, "
                          f"got {value!r}")
    children = node.get("children", [])
    if not isinstance(children, list):
        errors.append(f"{path}: children must be a list")
        return
    names = [c.get("name") for c in children if isinstance(c, dict)]
    if len(set(names)) != len(names):
        errors.append(f"{path}: duplicate child names (merge failed)")
    if names != sorted(names):
        errors.append(f"{path}: children not sorted by name")
    for child in children:
        child_name = (child.get("name", "?")
                      if isinstance(child, dict) else "?")
        check_node(child, f"{path};{child_name}", errors)


def check_profile(path, min_coverage):
    with open(path) as f:
        doc = json.load(f)

    errors = []
    for key in ("bench", "schema_version", "wall_ns", "threads", "root"):
        if key not in doc:
            errors.append(f"missing top-level key: {key}")
    if doc.get("schema_version") != 1:
        errors.append(f"schema_version {doc.get('schema_version')} != 1")
    if errors:
        return errors

    root = doc["root"]
    check_node(root, root.get("name", "root")
               if isinstance(root, dict) else "root", errors)
    if errors:
        return errors

    wall_ns = doc["wall_ns"]
    if not isinstance(wall_ns, numbers.Number) or wall_ns <= 0:
        errors.append(f"wall_ns must be > 0, got {wall_ns!r}")
        return errors
    if min_coverage > 0:
        coverage = root["incl_ns"] / wall_ns
        if coverage < min_coverage:
            errors.append(
                f"root inclusive time covers {coverage:.1%} of wall_ns, "
                f"below required {min_coverage:.1%}")
    return errors


def check_metrics(path, min_samples):
    errors = []
    count = 0
    prev_ts = None
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                sample = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"line {lineno}: not JSON: {exc}")
                continue
            for key in ("ts_ms", "sample", "stats", "exec"):
                if key not in sample:
                    errors.append(f"line {lineno}: missing key {key!r}")
            if sample.get("sample") != count:
                errors.append(f"line {lineno}: sample index "
                              f"{sample.get('sample')} != {count}")
            ts = sample.get("ts_ms")
            if prev_ts is not None and isinstance(ts, numbers.Number) \
                    and ts < prev_ts:
                errors.append(f"line {lineno}: ts_ms went backwards "
                              f"({ts} < {prev_ts})")
            if isinstance(ts, numbers.Number):
                prev_ts = ts
            count += 1
    if count < min_samples:
        errors.append(f"only {count} samples, required {min_samples}")
    return errors


def check_collapsed(path):
    errors = []
    count = 0
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            stack, sep, value = line.rpartition(" ")
            if not sep or not stack:
                errors.append(f"line {lineno}: expected "
                              f"'frame;frame;... <ns>'")
                continue
            if not value.isdigit():
                errors.append(f"line {lineno}: sample value {value!r} "
                              f"is not a nonnegative integer")
            if any(not frame for frame in stack.split(";")):
                errors.append(f"line {lineno}: empty frame in stack")
            count += 1
    if count == 0:
        errors.append("no collapsed stack lines")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifact",
                        help="profile JSON, metrics JSONL, or collapsed "
                             "stack file")
    parser.add_argument("--min-coverage", type=float, default=0.0,
                        help="minimum root incl_ns / wall_ns fraction "
                             "(profile mode)")
    parser.add_argument("--metrics", action="store_true",
                        help="validate a --metrics-out JSONL file")
    parser.add_argument("--min-samples", type=int, default=2,
                        help="minimum sample count (metrics mode)")
    parser.add_argument("--collapsed", action="store_true",
                        help="validate a --profile-collapsed file")
    args = parser.parse_args()

    if args.metrics and args.collapsed:
        parser.error("--metrics and --collapsed are mutually exclusive")
    if args.metrics:
        errors = check_metrics(args.artifact, args.min_samples)
    elif args.collapsed:
        errors = check_collapsed(args.artifact)
    else:
        errors = check_profile(args.artifact, args.min_coverage)

    if errors:
        for error in errors:
            print(f"check_profile_schema: {error}", file=sys.stderr)
        print(f"check_profile_schema: FAILED ({len(errors)} errors) "
              f"on {args.artifact}", file=sys.stderr)
        return 1
    print(f"check_profile_schema: OK ({args.artifact})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
